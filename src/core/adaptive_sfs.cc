#include "core/adaptive_sfs.h"

#include <algorithm>
#include <limits>

#include "common/timer.h"
#include "dominance/kernel.h"
#include "skyline/naive.h"

namespace nomsky {

AdaptiveSfsEngine::AdaptiveSfsEngine(const Dataset& data,
                                     const PreferenceProfile& tmpl)
    : data_(&data), template_(&tmpl) {
  WallTimer timer;
  template_ranks_ = std::make_unique<RankTable>(data.schema(), tmpl);

  // Algorithm 3: compute SKY(R̃) and presort it by the template score.
  std::vector<ScoredRow> all =
      PresortByScore(data, *template_ranks_, AllRows(data.num_rows()));
  CompiledProfile kernel(data.schema(), tmpl);
  std::vector<RowId> skyline = SfsExtract(kernel, data, all);
  sorted_.reserve(skyline.size());
  for (RowId r : skyline) {
    sorted_.push_back(ScoredRow{template_ranks_->Score(data, r), r});
  }
  // SfsExtract emits in score order already; keep the invariant explicit.
  NOMSKY_DCHECK(std::is_sorted(sorted_.begin(), sorted_.end()));

  BuildIndexes();
  preprocess_seconds_ = timer.ElapsedSeconds();
}

AdaptiveSfsEngine::AdaptiveSfsEngine(
    const Dataset& data, const PreferenceProfile& tmpl,
    std::vector<ScoredRow> presorted_template_skyline)
    : data_(&data), template_(&tmpl) {
  WallTimer timer;
  template_ranks_ = std::make_unique<RankTable>(data.schema(), tmpl);
  sorted_ = std::move(presorted_template_skyline);
  NOMSKY_CHECK(std::is_sorted(sorted_.begin(), sorted_.end()))
      << "presorted skyline must be in ascending score order";
  BuildIndexes();
  preprocess_seconds_ = timer.ElapsedSeconds();
}

void AdaptiveSfsEngine::BuildIndexes() {
  // Inverted index: value -> positions within the sorted list.
  const Schema& schema = data_->schema();
  inverted_.resize(schema.num_nominal());
  for (size_t j = 0; j < schema.num_nominal(); ++j) {
    inverted_[j].resize(schema.dim(schema.nominal_dims()[j]).cardinality());
    const auto& col = data_->nominal_column(j);
    for (size_t pos = 0; pos < sorted_.size(); ++pos) {
      inverted_[j][col[sorted_[pos].row]].push_back(
          static_cast<uint32_t>(pos));
    }
  }
}

std::vector<std::unique_ptr<AdaptiveSfsEngine::VisitScratch>>&
AdaptiveSfsEngine::ScratchLease::Freelist() {
  thread_local std::vector<std::unique_ptr<VisitScratch>> freelist;
  return freelist;
}

AdaptiveSfsEngine::ScratchLease::ScratchLease(size_t size) {
  auto& freelist = Freelist();
  // Prefer a recycled scratch already sized for this engine, so a thread
  // alternating between engines keeps the O(1) epoch-bump amortization
  // instead of re-zeroing stamps on every lease.
  for (size_t i = freelist.size(); i-- > 0;) {
    if (freelist[i]->stamp.size() == size) {
      scratch_ = std::move(freelist[i]);
      freelist.erase(freelist.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  if (scratch_ == nullptr) scratch_ = std::make_unique<VisitScratch>();
  if (scratch_->stamp.size() != size ||
      scratch_->epoch == std::numeric_limits<uint32_t>::max()) {
    scratch_->stamp.assign(size, 0);
    scratch_->epoch = 0;
  }
  ++scratch_->epoch;
}

AdaptiveSfsEngine::ScratchLease::~ScratchLease() {
  auto& freelist = Freelist();
  // Bounded cache: in-flight leases are few (one per nesting level), so a
  // handful of parked scratches covers every realistic engine mix.
  if (freelist.size() < 8) freelist.push_back(std::move(scratch_));
}

Result<std::vector<size_t>> AdaptiveSfsEngine::AffectedPositions(
    const PreferenceProfile& effective, VisitScratch* scratch) const {
  // A point is re-ranked iff it carries a value whose rank changes, i.e. a
  // value the query lists beyond the template prefix of its dimension.
  std::vector<size_t> positions;
  for (size_t j = 0; j < effective.num_nominal(); ++j) {
    const ImplicitPreference& pref = effective.pref(j);
    for (size_t pos = 0; pos < pref.order(); ++pos) {
      ValueId v = pref.choices()[pos];
      uint32_t old_rank = template_ranks_->rank(j, v);
      uint32_t new_rank = static_cast<uint32_t>(pos + 1);
      if (old_rank == new_rank) continue;
      for (uint32_t list_pos : inverted_[j][v]) {
        if (scratch->stamp[list_pos] != scratch->epoch) {
          scratch->stamp[list_pos] = scratch->epoch;
          positions.push_back(list_pos);
        }
      }
    }
  }
  return positions;
}

Result<size_t> AdaptiveSfsEngine::QueryProgressive(
    const PreferenceProfile& query,
    const std::function<bool(RowId, double)>& consume) const {
  NOMSKY_ASSIGN_OR_RETURN(PreferenceProfile effective,
                          query.CombineWithTemplate(*template_));
  QueryStats stats;

  ScratchLease lease(sorted_.size());
  VisitScratch& scratch = lease.get();
  NOMSKY_ASSIGN_OR_RETURN(std::vector<size_t> affected,
                          AffectedPositions(effective, &scratch));
  stats.affected = affected.size();

  // Re-score the affected points under the refined ranking and re-sort them
  // among themselves (Algorithm 4 steps 1-4).
  RankTable new_ranks(data_->schema(), effective);
  std::vector<ScoredRow> resorted;
  resorted.reserve(affected.size());
  for (size_t pos : affected) {
    RowId r = sorted_[pos].row;
    resorted.push_back(ScoredRow{new_ranks.Score(*data_, r), r});
  }
  std::sort(resorted.begin(), resorted.end());

  // Merged progressive extraction. Unaffected points keep their template
  // scores and mutual incomparability; every candidate needs checking only
  // against already-accepted AFFECTED points (see header comment). The
  // accepted affected points live in a dense compiled-kernel window;
  // candidates are packed lazily — only when the window is non-empty — so
  // queries with few affected points keep their o(n)-comparison profile.
  CompiledProfile kernel(data_->schema(), effective);
  PackedWindow accepted_affected(kernel.row_slots());
  std::vector<uint64_t> cand_packed(kernel.row_slots());
  size_t emitted = 0;

  size_t iu = 0;  // cursor over sorted_ (skipping affected positions)
  size_t ia = 0;  // cursor over resorted
  const uint32_t cur_epoch = scratch.epoch;
  auto skip_affected = [&] {
    while (iu < sorted_.size() && scratch.stamp[iu] == cur_epoch) ++iu;
  };
  skip_affected();
  while (iu < sorted_.size() || ia < resorted.size()) {
    bool take_affected;
    if (iu >= sorted_.size()) {
      take_affected = true;
    } else if (ia >= resorted.size()) {
      take_affected = false;
    } else {
      take_affected = resorted[ia] < sorted_[iu];
    }
    ScoredRow candidate = take_affected ? resorted[ia] : sorted_[iu];
    bool dominated = false;
    bool packed = false;
    if (accepted_affected.size() > 0) {
      kernel.PackRow(*data_, candidate.row, cand_packed.data());
      packed = true;
      dominated = WindowDominates(kernel, accepted_affected,
                                  cand_packed.data(), &stats.dominance_tests);
    }
    if (!dominated) {
      ++emitted;
      if (take_affected) {
        if (!packed) {
          kernel.PackRow(*data_, candidate.row, cand_packed.data());
        }
        accepted_affected.Append(cand_packed.data(), candidate.row);
      }
      if (!consume(candidate.row, candidate.score)) break;
    }
    if (take_affected) {
      ++ia;
    } else {
      ++iu;
      skip_affected();
    }
  }
  stats.skyline_size = emitted;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    last_stats_ = stats;
  }
  return emitted;
}

Result<std::vector<RowId>> AdaptiveSfsEngine::Query(
    const PreferenceProfile& query) const {
  std::vector<RowId> out;
  Result<size_t> n = QueryProgressive(query, [&](RowId r, double) {
    out.push_back(r);
    return true;
  });
  if (!n.ok()) return n.status();
  NOMSKY_DCHECK(*n == out.size());
  return out;
}

Result<std::vector<RowId>> AdaptiveSfsEngine::QueryTopK(
    const PreferenceProfile& query, size_t k) const {
  std::vector<RowId> out;
  out.reserve(k);
  Result<size_t> n = QueryProgressive(query, [&](RowId r, double) {
    out.push_back(r);
    return out.size() < k;
  });
  if (!n.ok()) return n.status();
  return out;
}

Result<size_t> AdaptiveSfsEngine::CountAffected(
    const PreferenceProfile& query) const {
  NOMSKY_ASSIGN_OR_RETURN(PreferenceProfile effective,
                          query.CombineWithTemplate(*template_));
  // Paper definition: points of SKY(R̃) carrying ANY value listed in R̃'.
  ScratchLease lease(sorted_.size());
  VisitScratch& scratch = lease.get();
  size_t count = 0;
  for (size_t j = 0; j < effective.num_nominal(); ++j) {
    for (ValueId v : effective.pref(j).choices()) {
      for (uint32_t pos : inverted_[j][v]) {
        if (scratch.stamp[pos] != scratch.epoch) {
          scratch.stamp[pos] = scratch.epoch;
          ++count;
        }
      }
    }
  }
  return count;
}

size_t AdaptiveSfsEngine::MemoryUsage() const {
  // sorted_ plus the inverted index: the outer per-dimension / per-value
  // vector-of-vectors scaffolding is counted too, not just the leaf lists —
  // at high cardinality the scaffolding dominates the leaves.
  size_t bytes = sorted_.capacity() * sizeof(ScoredRow);
  bytes += inverted_.capacity() * sizeof(inverted_[0]);
  for (const auto& per_dim : inverted_) {
    bytes += per_dim.capacity() * sizeof(std::vector<uint32_t>);
    for (const auto& list : per_dim) bytes += list.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// IncrementalAdaptiveSfs
// ---------------------------------------------------------------------------

IncrementalAdaptiveSfs::IncrementalAdaptiveSfs(Dataset data,
                                               PreferenceProfile tmpl)
    : data_(std::move(data)),
      template_(std::move(tmpl)),
      ranks_(data_.schema(), template_),
      cmp_(data_, template_) {
  size_t n = data_.num_rows();
  alive_.assign(n, true);
  in_skyline_.assign(n, false);
  score_.resize(n);
  for (RowId r = 0; r < n; ++r) score_[r] = ranks_.Score(data_, r);
  num_live_ = n;
  for (RowId r : SfsSkyline(data_, template_, AllRows(n))) {
    in_skyline_[r] = true;
    list_.Insert(ScoreKey{score_[r], r});
  }
}

Result<RowId> IncrementalAdaptiveSfs::Insert(const RowValues& row) {
  NOMSKY_RETURN_NOT_OK(data_.Append(row));
  RowId r = static_cast<RowId>(data_.num_rows() - 1);
  alive_.push_back(true);
  in_skyline_.push_back(false);
  score_.push_back(ranks_.Score(data_, r));
  ++num_live_;
  dirty_ = true;

  // Compare against the current skyline: a single pass finds whether the
  // new tuple is dominated and which members it demotes.
  bool dominated = false;
  std::vector<RowId> demoted;
  list_.ForEach([&](const ScoreKey& k) {
    if (dominated) return;
    DomResult res = cmp_.Compare(k.row, r);
    if (res == DomResult::kLeftDominates) {
      dominated = true;  // cannot demote anyone if dominated (transitivity)
    } else if (res == DomResult::kRightDominates) {
      demoted.push_back(k.row);
    }
  });
  if (!dominated) {
    for (RowId d : demoted) {
      in_skyline_[d] = false;
      list_.Erase(ScoreKey{score_[d], d});
    }
    in_skyline_[r] = true;
    list_.Insert(ScoreKey{score_[r], r});
  }
  return r;
}

Status IncrementalAdaptiveSfs::Delete(RowId row) {
  if (row >= data_.num_rows() || !alive_[row]) {
    return Status::NotFound("row ", row, " is not live");
  }
  alive_[row] = false;
  --num_live_;
  dirty_ = true;
  if (!in_skyline_[row]) return Status::OK();

  in_skyline_[row] = false;
  list_.Erase(ScoreKey{score_[row], row});

  // Promote shadow tuples the deleted point was the last dominator of:
  // those not dominated by any remaining skyline member, thinned to the
  // skyline among themselves.
  std::vector<RowId> candidates;
  for (RowId s = 0; s < data_.num_rows(); ++s) {
    if (!alive_[s] || in_skyline_[s]) continue;
    bool dominated = false;
    list_.ForEach([&](const ScoreKey& k) {
      if (!dominated && cmp_.Compare(k.row, s) == DomResult::kLeftDominates) {
        dominated = true;
      }
    });
    if (!dominated) candidates.push_back(s);
  }
  for (RowId p : NaiveSkyline(cmp_, candidates)) {
    in_skyline_[p] = true;
    list_.Insert(ScoreKey{score_[p], p});
  }
  return Status::OK();
}

void IncrementalAdaptiveSfs::RebuildEngineIfDirty() {
  if (!dirty_ && engine_ != nullptr) return;
  // The maintained list IS the presorted live template skyline, so the
  // snapshot engine never sees tombstoned rows.
  std::vector<ScoredRow> presorted;
  presorted.reserve(list_.size());
  list_.ForEach(
      [&](const ScoreKey& k) { presorted.push_back(ScoredRow{k.score, k.row}); });
  engine_ = std::make_unique<AdaptiveSfsEngine>(data_, template_,
                                                std::move(presorted));
  dirty_ = false;
}

Result<std::vector<RowId>> IncrementalAdaptiveSfs::Query(
    const PreferenceProfile& query) {
  RebuildEngineIfDirty();
  return engine_->Query(query);
}

std::vector<RowId> IncrementalAdaptiveSfs::TemplateSkyline() const {
  std::vector<RowId> out;
  out.reserve(list_.size());
  list_.ForEach([&](const ScoreKey& k) { out.push_back(k.row); });
  return out;
}

}  // namespace nomsky
