// Adaptive SFS (paper Section 4): progressive implicit-preference querying
// without materialization.
//
// Preprocessing (Algorithm 3): compute S = SKY(R̃) under the template,
// rank values (r(v) = c_i by default, r(v_j) = j for template choices) and
// presort S by f(p) = Σ r(p.D_i). Build an inverted index value → S
// positions.
//
// Query (Algorithm 4): a refinement R̃' re-ranks only the values it lists
// beyond the template prefix, so only the l points of S carrying such
// values ("affected" points) change score. Those are located through the
// inverted index, re-scored, re-sorted among themselves (O(l log l)) and
// merged back against the untouched presorted remainder. Extraction then
// exploits that a refinement only ever ADDS dominance pairs whose better
// side is a newly listed value:
//   * an unaffected point never newly dominates anything, and
//   * two unaffected points stay mutually incomparable,
// so every candidate only needs to be checked against the affected points
// accepted so far. This yields the paper's O(l log n + min(c,l) · n) query
// bound and emits skyline points progressively in score order.
//
// IncrementalAdaptiveSfs additionally owns its dataset and maintains
// S and the sorted list under tuple insertions and deletions (Section 4.3).

#ifndef NOMSKY_CORE_ADAPTIVE_SFS_H_
#define NOMSKY_CORE_ADAPTIVE_SFS_H_

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "common/dataset.h"
#include "common/result.h"
#include "core/engine.h"
#include "core/sorted_list.h"
#include "order/ranking.h"
#include "skyline/sfs.h"

namespace nomsky {

/// \brief The SFS-A engine of the paper.
///
/// Query, QueryProgressive, QueryTopK and CountAffected are const and safe
/// to call concurrently: the per-query visit-stamp scratch lives in
/// thread_local storage and the last-query statistics are published under a
/// mutex (last_query_stats() reports the most recently *finished* query).
class AdaptiveSfsEngine : public SkylineEngine {
 public:
  struct QueryStats {
    size_t affected = 0;         ///< l: re-ranked points
    size_t dominance_tests = 0;
    size_t skyline_size = 0;     ///< |SKY(R̃')|
  };

  /// Preprocesses (Algorithm 3). `data` and `tmpl` must outlive the engine.
  AdaptiveSfsEngine(const Dataset& data, const PreferenceProfile& tmpl);

  /// Constructs from an already-computed template skyline in presorted
  /// (ascending template-score) order; skips the skyline computation. Used
  /// by IncrementalAdaptiveSfs, whose maintained list is exactly this.
  AdaptiveSfsEngine(const Dataset& data, const PreferenceProfile& tmpl,
                    std::vector<ScoredRow> presorted_template_skyline);

  const char* name() const override { return "SFS-A"; }

  Result<std::vector<RowId>> Query(
      const PreferenceProfile& query) const override;

  /// \brief Progressive variant: emits each confirmed skyline point (with
  /// its query score) as soon as it is accepted; the consumer returns false
  /// to stop early. Returns the number of points emitted.
  Result<size_t> QueryProgressive(
      const PreferenceProfile& query,
      const std::function<bool(RowId, double)>& consume) const;

  /// \brief First k skyline points in ascending score order — the "show me
  /// a page of best results now" use the paper's progressiveness enables.
  /// Costs only the work needed to confirm k points.
  Result<std::vector<RowId>> QueryTopK(const PreferenceProfile& query,
                                       size_t k) const;

  /// \brief S = SKY(template) in presorted (score) order.
  const std::vector<ScoredRow>& sorted_skyline() const { return sorted_; }

  /// \brief |AFFECT(R)| under the paper's definition: points of S carrying
  /// ANY value listed in the (combined) query preference. Used for the
  /// panel-(d) metric; the engine itself re-ranks only the subset whose
  /// rank actually changes.
  Result<size_t> CountAffected(const PreferenceProfile& query) const;

  size_t MemoryUsage() const override;
  double preprocessing_seconds() const override { return preprocess_seconds_; }
  QueryStats last_query_stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return last_stats_;
  }

 private:
  friend class IncrementalAdaptiveSfs;

  /// Visit-stamp scratch: stamp[pos] == epoch marks positions touched by
  /// the running query. Instances are recycled through a thread_local
  /// freelist (the epoch bump invalidates stale stamps in O(1); a size
  /// change forces a full reset).
  struct VisitScratch {
    std::vector<uint32_t> stamp;
    uint32_t epoch = 0;
  };

  /// RAII lease of a scratch from the calling thread's freelist, sized for
  /// `size` slots with the epoch already advanced for a fresh query. Each
  /// in-flight query leases its own instance, so a QueryProgressive
  /// consumer that re-enters an engine on the same thread cannot clobber
  /// the outer query's stamps.
  class ScratchLease {
   public:
    explicit ScratchLease(size_t size);
    ~ScratchLease();
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    VisitScratch& get() const { return *scratch_; }

   private:
    static std::vector<std::unique_ptr<VisitScratch>>& Freelist();

    std::unique_ptr<VisitScratch> scratch_;
  };

  void BuildIndexes();

  Result<std::vector<size_t>> AffectedPositions(
      const PreferenceProfile& effective, VisitScratch* scratch) const;

  const Dataset* data_;
  const PreferenceProfile* template_;
  std::unique_ptr<RankTable> template_ranks_;
  std::vector<ScoredRow> sorted_;  // L(R̃): S presorted by template score
  // inverted_[j][v] = positions (into sorted_) of points with value v on
  // nominal dim j.
  std::vector<std::vector<std::vector<uint32_t>>> inverted_;
  double preprocess_seconds_ = 0.0;

  mutable std::mutex stats_mutex_;
  mutable QueryStats last_stats_;  // guarded by stats_mutex_
};

/// \brief Adaptive SFS with incremental maintenance: owns its data; tuples
/// can be inserted and deleted between queries without re-preprocessing.
class IncrementalAdaptiveSfs {
 public:
  /// Starts from `data` (copied in). The template is copied too.
  IncrementalAdaptiveSfs(Dataset data, PreferenceProfile tmpl);

  /// \brief Appends a tuple; maintains SKY(R̃) and the sorted list.
  /// Returns the new row id.
  Result<RowId> Insert(const RowValues& row);

  /// \brief Deletes a tuple. If it was a skyline point, non-skyline points
  /// it was shadowing are promoted.
  Status Delete(RowId row);

  /// \brief SKY(R̃') over the live tuples.
  Result<std::vector<RowId>> Query(const PreferenceProfile& query);

  /// \brief Number of live tuples.
  size_t num_live() const { return num_live_; }

  /// \brief Current SKY(template), unsorted.
  std::vector<RowId> TemplateSkyline() const;

  const Dataset& data() const { return data_; }

 private:
  void RebuildEngineIfDirty();

  Dataset data_;
  PreferenceProfile template_;
  RankTable ranks_;
  DominanceComparator cmp_;  // under the template
  SortedList list_;          // (template score, row) of skyline members
  std::vector<bool> alive_;
  std::vector<bool> in_skyline_;
  std::vector<double> score_;  // template score per row
  size_t num_live_ = 0;

  // Query path: a lazily rebuilt AdaptiveSfsEngine snapshot.
  bool dirty_ = true;
  std::unique_ptr<AdaptiveSfsEngine> engine_;
};

}  // namespace nomsky

#endif  // NOMSKY_CORE_ADAPTIVE_SFS_H_
