#include "core/sorted_list.h"

#include <cstdlib>
#include <cstring>
#include <new>

namespace nomsky {

SortedList::SortedList() : rng_(0x5eed5eedULL) {
  head_ = NewNode(ScoreKey{0.0, 0}, kMaxLevel);
}

SortedList::~SortedList() {
  Node* n = head_;
  while (n != nullptr) {
    Node* next = n->next[0];
    FreeNode(n);
    n = next;
  }
}

SortedList::Node* SortedList::NewNode(ScoreKey key, int level) {
  size_t bytes = sizeof(Node) + (level - 1) * sizeof(Node*);
  Node* n = static_cast<Node*>(std::malloc(bytes));
  if (n == nullptr) throw std::bad_alloc();
  n->key = key;
  n->level = level;
  std::memset(static_cast<void*>(n->next), 0, level * sizeof(Node*));
  node_bytes_ += bytes;
  return n;
}

void SortedList::FreeNode(Node* n) { std::free(n); }

int SortedList::RandomLevel() {
  int level = 1;
  // p = 1/4 promotion probability.
  while (level < kMaxLevel && (rng_.Next() & 3) == 0) ++level;
  return level;
}

bool SortedList::Insert(ScoreKey key) {
  Node* update[kMaxLevel];
  Node* n = head_;
  for (int l = level_ - 1; l >= 0; --l) {
    while (n->next[l] != nullptr && n->next[l]->key < key) n = n->next[l];
    update[l] = n;
  }
  if (n->next[0] != nullptr && n->next[0]->key == key) return false;

  int level = RandomLevel();
  if (level > level_) {
    for (int l = level_; l < level; ++l) update[l] = head_;
    level_ = level;
  }
  Node* node = NewNode(key, level);
  for (int l = 0; l < level; ++l) {
    node->next[l] = update[l]->next[l];
    update[l]->next[l] = node;
  }
  ++size_;
  return true;
}

bool SortedList::Erase(ScoreKey key) {
  Node* update[kMaxLevel];
  Node* n = head_;
  for (int l = level_ - 1; l >= 0; --l) {
    while (n->next[l] != nullptr && n->next[l]->key < key) n = n->next[l];
    update[l] = n;
  }
  Node* target = n->next[0];
  if (target == nullptr || !(target->key == key)) return false;
  for (int l = 0; l < target->level; ++l) {
    if (update[l]->next[l] == target) update[l]->next[l] = target->next[l];
  }
  node_bytes_ -= sizeof(Node) + (target->level - 1) * sizeof(Node*);
  FreeNode(target);
  --size_;
  while (level_ > 1 && head_->next[level_ - 1] == nullptr) --level_;
  return true;
}

bool SortedList::Contains(ScoreKey key) const {
  const ScoreKey* found = LowerBound(key);
  return found != nullptr && *found == key;
}

const ScoreKey* SortedList::LowerBound(ScoreKey key) const {
  Node* n = head_;
  for (int l = level_ - 1; l >= 0; --l) {
    while (n->next[l] != nullptr && n->next[l]->key < key) n = n->next[l];
  }
  Node* candidate = n->next[0];
  return candidate != nullptr ? &candidate->key : nullptr;
}

std::vector<ScoreKey> SortedList::ToVector() const {
  std::vector<ScoreKey> out;
  out.reserve(size_);
  ForEach([&](const ScoreKey& k) { out.push_back(k); });
  return out;
}

size_t SortedList::MemoryUsage() const { return node_bytes_; }

}  // namespace nomsky
