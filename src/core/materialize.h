// Full materialization: the strawman of Section 3 — "a naive approach is
// to materialize the skylines for all possible preferences. However ...
// this approach is very costly in storage and preprocessing" (the number
// of implicit preferences is O((c · c!)^{m'})).
//
// This engine enumerates EVERY combination of implicit preferences up to a
// maximum order over every nominal dimension, computes each skyline, and
// stores it in a hash table; queries are pure lookups. It exists to
// reproduce the motivation quantitatively (bench_materialization): even
// for tiny domains its preprocessing/storage dwarf the IPO tree's, while
// query times are comparable to the tree's merging evaluation.

#ifndef NOMSKY_CORE_MATERIALIZE_H_
#define NOMSKY_CORE_MATERIALIZE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/result.h"
#include "core/engine.h"
#include "order/preference_profile.h"

namespace nomsky {

/// \brief Exhaustive materialization of SKY(R̃') for every implicit
/// preference of order ≤ max_order refining the template.
class FullMaterializationEngine : public SkylineEngine {
 public:
  /// Enumerates and materializes; cost grows with (c!/(c-x)!)^{m'} — keep
  /// cardinalities tiny. `data` and `tmpl` must outlive the engine.
  FullMaterializationEngine(const Dataset& data, const PreferenceProfile& tmpl,
                            size_t max_order);

  const char* name() const override { return "Full-Mat"; }

  /// \brief Lookup. Queries of unsupported order return Unsupported.
  Result<std::vector<RowId>> Query(
      const PreferenceProfile& query) const override;

  size_t MemoryUsage() const override;
  double preprocessing_seconds() const override { return preprocess_seconds_; }

  /// \brief Number of materialized preference combinations.
  size_t num_entries() const { return table_.size(); }

 private:
  static std::string KeyOf(const PreferenceProfile& profile);

  void Enumerate(size_t dim, PreferenceProfile* current);

  const Dataset* data_;
  const PreferenceProfile* template_;
  size_t max_order_;
  std::unordered_map<std::string, std::vector<RowId>> table_;
  double preprocess_seconds_ = 0.0;
};

}  // namespace nomsky

#endif  // NOMSKY_CORE_MATERIALIZE_H_
