// Binary persistence of an IPO tree.
//
// Layout (little-endian, fixed-width):
//   magic "NIPO", version u32
//   fingerprint: num_rows u64, num_nominal u32, cardinalities u32[]
//   template: per nominal dim, order u32 + choice ids u32[]
//   options: use_bitmaps u8, max_values_per_dim u64
//   skyline: count u64 + row ids u32[]
//   allowed values: per dim, count u32 + value ids u32[]
//   nodes: disqualified sets in construction (preorder) order, each as
//          count u64 + row ids u32[]; the tree SHAPE is a pure function of
//          the allowed-value lists, so no structural metadata is stored.
//   build stats: num_nodes u64, total_disqualified u64, mdc_conditions u64
//
// Primitive encoding rides on common/serialize.h (u32 vectors are
// BinaryWriter::PodVector: u64 count + raw elements), which this format
// originated — the layout predates the shared serializer and is pinned
// byte-identical by tests/ipo_serialize_test.cc.

#include <fstream>

#include "common/serialize.h"
#include "core/ipo_tree.h"

namespace nomsky {

namespace {

constexpr char kMagic[4] = {'N', 'I', 'P', 'O'};
constexpr uint32_t kVersion = 1;

}  // namespace

Status IpoTreeEngine::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) {
    return Status::Internal("cannot open '", path, "' for writing");
  }
  BinaryWriter writer(out);
  writer.Magic(kMagic, kVersion);

  const Schema& schema = data_->schema();
  writer.Pod<uint64_t>(data_->num_rows());
  writer.Pod<uint32_t>(static_cast<uint32_t>(schema.num_nominal()));
  for (DimId d : schema.nominal_dims()) {
    writer.Pod<uint32_t>(static_cast<uint32_t>(schema.dim(d).cardinality()));
  }
  for (size_t j = 0; j < schema.num_nominal(); ++j) {
    writer.PodVector(template_->pref(j).choices());
  }
  writer.Pod<uint8_t>(options_.use_bitmaps ? 1 : 0);
  writer.Pod<uint64_t>(options_.max_values_per_dim);

  writer.PodVector(skyline_);
  for (const auto& values : allowed_) writer.PodVector(values);

  // Disqualified sets in the same recursion order as BuildSubtree.
  auto write_node = [&](auto&& self, const Node& node) -> void {
    for (const auto& child : node.children) {
      if (child == nullptr) continue;
      // Choice children store an A-set; the φ child (last slot) stores an
      // empty one — writing it uniformly keeps the format simple.
      std::vector<uint32_t> rows;
      if (options_.use_bitmaps) {
        child->a_bits.ForEachSetBit(
            [&](size_t i) { rows.push_back(skyline_[i]); });
      } else {
        rows = child->a_rows;
      }
      writer.PodVector(rows);
      self(self, *child);
    }
  };
  write_node(write_node, *root_);

  writer.Pod<uint64_t>(build_stats_.num_nodes);
  writer.Pod<uint64_t>(build_stats_.total_disqualified);
  writer.Pod<uint64_t>(build_stats_.mdc_conditions);
  out.flush();
  if (!writer.ok()) return Status::Internal("write to '", path, "' failed");
  return Status::OK();
}

IpoTreeEngine::IpoTreeEngine(const Dataset& data, const PreferenceProfile& tmpl,
                             Options options, LoadTag)
    : data_(&data), template_(&tmpl), options_(options) {
  name_ = options_.max_values_per_dim == std::numeric_limits<size_t>::max()
              ? "IPO Tree"
              : "IPO Tree-" + std::to_string(options_.max_values_per_dim);
}

Result<std::unique_ptr<IpoTreeEngine>> IpoTreeEngine::Load(
    const Dataset& data, const PreferenceProfile& tmpl,
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open '", path, "'");
  BinaryReader reader(in);

  uint32_t version = 0;
  if (!reader.Magic(kMagic, &version) || version != kVersion) {
    return Status::InvalidArgument("'", path, "' is not an IPO-tree file");
  }

  const Schema& schema = data.schema();
  uint64_t num_rows = 0;
  uint32_t num_nominal = 0;
  if (!reader.Pod(&num_rows) || !reader.Pod(&num_nominal) ||
      num_rows != data.num_rows() || num_nominal != schema.num_nominal()) {
    return Status::InvalidArgument("'", path,
                                   "' was built over a different dataset");
  }
  for (DimId d : schema.nominal_dims()) {
    uint32_t c = 0;
    if (!reader.Pod(&c) || c != schema.dim(d).cardinality()) {
      return Status::InvalidArgument("'", path,
                                     "' has mismatched nominal cardinalities");
    }
  }
  for (size_t j = 0; j < schema.num_nominal(); ++j) {
    std::vector<uint32_t> choices;
    if (!reader.PodVector(&choices, 1 << 20) ||
        choices != tmpl.pref(j).choices()) {
      return Status::InvalidArgument("'", path,
                                     "' was built with a different template");
    }
  }
  uint8_t use_bitmaps = 0;
  uint64_t max_values = 0;
  if (!reader.Pod(&use_bitmaps) || !reader.Pod(&max_values)) {
    return Status::InvalidArgument("'", path, "' truncated (options)");
  }

  Options options;
  options.use_bitmaps = use_bitmaps != 0;
  options.max_values_per_dim = max_values;
  auto engine = std::unique_ptr<IpoTreeEngine>(
      new IpoTreeEngine(data, tmpl, options, LoadTag{}));

  if (!reader.PodVector(&engine->skyline_, num_rows)) {
    return Status::InvalidArgument("'", path, "' truncated (skyline)");
  }
  engine->row_to_pos_.assign(data.num_rows(), 0);
  for (size_t i = 0; i < engine->skyline_.size(); ++i) {
    if (engine->skyline_[i] >= data.num_rows()) {
      return Status::InvalidArgument("'", path, "' has out-of-range rows");
    }
    engine->row_to_pos_[engine->skyline_[i]] = i;
  }

  engine->allowed_.resize(num_nominal);
  engine->allowed_slot_.resize(num_nominal);
  for (size_t j = 0; j < num_nominal; ++j) {
    size_t c = schema.dim(schema.nominal_dims()[j]).cardinality();
    if (!reader.PodVector(&engine->allowed_[j], c)) {
      return Status::InvalidArgument("'", path, "' truncated (allowed)");
    }
    engine->allowed_slot_[j].assign(c, -1);
    for (size_t k = 0; k < engine->allowed_[j].size(); ++k) {
      if (engine->allowed_[j][k] >= c) {
        return Status::InvalidArgument("'", path, "' has bad allowed values");
      }
      engine->allowed_slot_[j][engine->allowed_[j][k]] =
          static_cast<int32_t>(k);
    }
  }
  if (options.use_bitmaps) {
    engine->bitmap_index_ =
        std::make_unique<NominalBitmapIndex>(data, engine->skyline_);
  }

  // Rebuild the tree shape and read A-sets in the same recursion order.
  engine->root_ = std::make_unique<Node>();
  Status read_error = Status::OK();
  auto read_node = [&](auto&& self, Node* node, size_t depth) -> void {
    if (depth == num_nominal || !read_error.ok()) return;
    node->children.resize(engine->allowed_[depth].size() + 1);
    for (size_t k = 0; k < node->children.size(); ++k) {
      auto child = std::make_unique<Node>();
      std::vector<uint32_t> rows;
      if (!reader.PodVector(&rows, engine->skyline_.size())) {
        read_error = Status::InvalidArgument("'", path, "' truncated (nodes)");
        return;
      }
      if (engine->options_.use_bitmaps) {
        child->a_bits = DynamicBitset(engine->skyline_.size());
        for (uint32_t r : rows) {
          if (r >= engine->row_to_pos_.size()) {
            read_error =
                Status::InvalidArgument("'", path, "' has bad A-set rows");
            return;
          }
          child->a_bits.set(engine->row_to_pos_[r]);
        }
      } else {
        child->a_rows = std::move(rows);
      }
      self(self, child.get(), depth + 1);
      node->children[k] = std::move(child);
    }
  };
  read_node(read_node, engine->root_.get(), 0);
  NOMSKY_RETURN_NOT_OK(read_error);

  uint64_t num_nodes = 0, total_disq = 0, mdc_conds = 0;
  if (!reader.Pod(&num_nodes) || !reader.Pod(&total_disq) ||
      !reader.Pod(&mdc_conds)) {
    return Status::InvalidArgument("'", path, "' truncated (stats)");
  }
  engine->build_stats_.num_nodes = num_nodes;
  engine->build_stats_.total_disqualified = total_disq;
  engine->build_stats_.mdc_conditions = mdc_conds;
  engine->build_stats_.seconds = 0.0;
  return engine;
}

}  // namespace nomsky
