// ShardServer: one long-lived process serving a slice of the table behind
// the frame protocol (net/frame.h).
//
// Lifecycle: Start() binds 127.0.0.1:<port> (0 = ephemeral; port() reads
// the bound one back) and spawns the accept loop. The server may start
// EMPTY: the first kLoadShard frame carries a shard image whose bytes are
// exactly the on-disk format (exec/shard_image.h), adopted via
// ShardedEngine::CreateFromImage — the wire format IS the image format.
// Alternatively Bootstrap() preloads an image in-process (the CLI's
// --serve --load-shards path). Refreshes arrive as kRefresh frames
// carrying a SINGLE-shard image applied through RebuildShard: in-flight
// queries keep draining the snapshot they pinned, the next query sees the
// new epoch — the epoch-swap design, now reachable over a socket.
//
// Concurrency: one accept thread plus one thread per live connection
// (joined on Stop; a finished connection parks its thread for reaping).
// The engine swap slot is a shared_ptr published under a mutex, same
// pointer-copy discipline as SnapshotSlot. Queries parse through a
// ParsedQueryCache shared by all connections.
//
// Robustness contract (tested under asan/ubsan/tsan):
//   * malformed frames (bad version, unknown type, oversized length,
//     reserved bits) -> best-effort kError reply, connection dropped,
//     server keeps serving other connections;
//   * a client vanishing mid-query -> the write fails, the connection is
//     reaped, nothing else notices;
//   * kShutdown -> kOk reply, then the accept loop stops and Stop() joins
//     every connection; in-flight requests finish first.

#ifndef NOMSKY_SERVE_SHARD_SERVER_H_
#define NOMSKY_SERVE_SHARD_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "core/query_history.h"
#include "exec/shard_image.h"
#include "exec/sharded_engine.h"
#include "exec/thread_pool.h"
#include "net/frame.h"
#include "net/socket.h"
#include "serve/query_cache.h"

namespace nomsky {
namespace serve {

/// \brief Serving-side counters, shipped verbatim in kStatsResult frames.
struct ShardServerStats {
  uint64_t queries = 0;          ///< kQuery frames answered OK
  uint64_t query_failures = 0;   ///< kQuery frames answered kError
  uint64_t refreshes = 0;        ///< kRefresh frames applied
  uint64_t loads = 0;            ///< kLoadShard bootstraps adopted
  uint64_t rejected_frames = 0;  ///< malformed/unexpected frames dropped
  uint64_t cache_hits = 0;       ///< parsed-query cache hits
  uint64_t cache_misses = 0;     ///< parsed-query cache misses
  /// Completed IPO-Tree-k re-materializations (manual kRematerialize verbs
  /// plus controller-triggered rebuilds).
  uint64_t rematerializations = 0;
};

class ShardServer {
 public:
  struct Options {
    uint16_t port = 0;               ///< 0 = ephemeral
    std::string inner_engine = "sfsd";
    size_t threads = 1;              ///< worker pool for the engine
    size_t cache_capacity = 256;     ///< parsed-query cache bound
    uint32_t max_payload = net::kDefaultMaxPayload;
    int io_deadline_ms = 30'000;     ///< per-read budget on live frames
    /// History-driven IPO-Tree-k re-materialization (meaningful with a
    /// hybrid inner engine; other engines record history but have no tree
    /// to re-tune). The server always keeps a QueryHistory of answered
    /// queries so the manual kRematerialize verb works; a threshold > 0
    /// additionally arms the automatic controller.
    size_t history_window = 512;     ///< recorded queries kept (0 = all)
    size_t rematerialize_topk = 10;  ///< plan width per nominal dimension
    double rematerialize_threshold = 0.0;  ///< 0 = manual verb only
    size_t rematerialize_cooldown = 64;    ///< queries between decisions
  };

  explicit ShardServer(Options options);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// \brief Binds the listener and starts accepting. Fails if the port is
  /// taken.
  Status Start();

  /// \brief Adopts an image in-process (no kLoadShard needed). May also be
  /// called before Start().
  Status Bootstrap(ShardImage&& image);

  /// \brief Blocks until a kShutdown frame stops the server (or Stop() is
  /// called from another thread).
  void WaitUntilStopped();

  /// \brief Stops accepting, joins the accept loop and every connection
  /// thread. Idempotent.
  void Stop();

  /// \brief Bound port (valid after Start()).
  uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  ShardServerStats stats() const;

 private:
  struct EngineState {
    // Image-adopted engines borrow the template by reference; it must live
    // exactly as long as the engine, so the pair travels together. The
    // history is declared before the engine for the same reason — the
    // engine's materialization controller borrows it, so it must be
    // destroyed after the engine.
    std::unique_ptr<PreferenceProfile> tmpl;
    std::unique_ptr<QueryHistory> history;
    std::unique_ptr<ShardedEngine> engine;
    std::unique_ptr<ParsedQueryCache> cache;
  };

  void AcceptLoop();
  void ServeConnection(net::TcpSocket socket);
  void ReapFinishedConnections();  // requires conn_mutex_ held

  /// \brief Handles one decoded frame; returns false when the connection
  /// should close (shutdown or protocol violation).
  bool HandleFrame(net::TcpSocket& socket, net::Frame&& frame);

  std::shared_ptr<const EngineState> engine_state() const;

  Status HandleLoad(const std::string& payload);
  Status HandleRefresh(const std::string& payload);
  Result<std::string> HandleQuery(const std::string& payload);
  /// Re-tunes the live engine's IPO-Tree-k from recorded history (payload:
  /// u32 plan width, 0 = the server default). On success `reply` carries
  /// the new u64 tree epoch.
  Status HandleRematerialize(const std::string& payload, std::string* reply);
  std::string HelloAckPayload() const;
  std::string StatsPayload() const;

  Options options_;
  uint16_t port_ = 0;
  net::TcpListener listener_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex engine_mutex_;  // guards the shared_ptr swap only
  std::shared_ptr<const EngineState> engine_state_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread accept_thread_;

  std::mutex conn_mutex_;
  struct Connection {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Connection> connections_;

  std::mutex stopped_mutex_;
  std::condition_variable stopped_cv_;

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> query_failures_{0};
  mutable std::atomic<uint64_t> refreshes_{0};
  mutable std::atomic<uint64_t> loads_{0};
  mutable std::atomic<uint64_t> rejected_frames_{0};
};

}  // namespace serve
}  // namespace nomsky

#endif  // NOMSKY_SERVE_SHARD_SERVER_H_
