// ParsedQueryCache: canonical-text -> parsed PreferenceProfile, LRU-bounded.
//
// Throughput runs replay a small set of popular query strings millions of
// times; parsing each occurrence re-walks the schema and re-validates every
// clause. The cache keys on a CANONICAL form of the query text (clause
// trimming + whitespace stripping inside preferences, clause order
// preserved — order is semantically irrelevant across dimensions but
// canonicalizing it would require name resolution, i.e. half a parse), so
// trivially respaced spellings of one query share an entry without parsing.
//
// Entries are shared_ptr<const PreferenceProfile>: a hit pins the profile
// for the request's lifetime even if the entry is evicted mid-request.
// Parse FAILURES are never cached — a failed parse is cheap (it aborts at
// the offending clause) and caching negative entries would let a typo
// permanently occupy capacity.
//
// Thread-safe: one mutex around the map+LRU list, atomics for the
// counters (hits/misses/evictions are observable via --explain and the
// server's kStats frame).

#ifndef NOMSKY_SERVE_QUERY_CACHE_H_
#define NOMSKY_SERVE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/schema.h"
#include "order/preference_profile.h"

namespace nomsky {
namespace serve {

/// \brief Canonical form of a query text: clauses split on ';', empties
/// dropped, "name" trimmed, all whitespace inside the preference removed,
/// rejoined as "name: pref; name: pref". Pure text transformation — no
/// schema, no parse, so it is cheap enough to run on every lookup.
std::string CanonicalQueryText(const std::string& text);

/// \brief LRU cache of parsed queries for one schema.
class ParsedQueryCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
  };

  /// \brief One read of every observable, counters and occupancy together —
  /// what bench_serving records into its JSON figures.
  struct CounterSnapshot {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t size = 0;      ///< live entries when the snapshot was taken
    size_t capacity = 0;
  };

  /// `schema` must outlive the cache. `capacity` bounds live entries
  /// (>= 1; 0 is clamped to 1 — a cache that can hold nothing would turn
  /// every hit path into a miss path with extra bookkeeping).
  ParsedQueryCache(const Schema& schema, size_t capacity);

  /// \brief Canonicalizes, looks up, parses on miss (inserting on
  /// success). The returned profile is immutable and safely outlives
  /// eviction. Parse errors pass through and are NOT cached. `was_hit`
  /// (optional) reports whether THIS lookup hit — the per-request signal
  /// --explain surfaces, where the aggregate counters cannot attribute.
  Result<std::shared_ptr<const PreferenceProfile>> Get(
      const std::string& text, bool* was_hit = nullptr);

  size_t capacity() const { return capacity_; }
  size_t size() const;
  Stats stats() const;
  CounterSnapshot Snapshot() const;

 private:
  struct Entry {
    std::shared_ptr<const PreferenceProfile> profile;
    std::list<std::string>::iterator lru_pos;  // most-recent at front
  };

  const Schema* schema_;
  size_t capacity_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // canonical keys, most-recently-used first
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace serve
}  // namespace nomsky

#endif  // NOMSKY_SERVE_QUERY_CACHE_H_
