#include "serve/serving_executor.h"

#include <numeric>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/serialize.h"
#include "exec/shard_image.h"
#include "skyline/sfs.h"

namespace nomsky {
namespace serve {

using net::Frame;
using net::FrameType;

namespace {

std::string SerializeSchema(const Schema& schema) {
  std::ostringstream out;
  BinaryWriter writer(out);
  WriteSchema(writer, schema);
  return std::move(out).str();
}

std::string Where(const Endpoint& endpoint) {
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

}  // namespace

ServingExecutor::ServingExecutor(Schema schema, uint64_t source_rows,
                                 const Options& options)
    : schema_(std::move(schema)), source_rows_(source_rows),
      options_(options) {
  if (options_.max_inflight == 0) options_.max_inflight = 1;
  cache_ =
      std::make_unique<ParsedQueryCache>(schema_, options_.cache_capacity);
  if (options_.result_cache_capacity > 0) {
    ResultCache::Options cache_options;
    cache_options.capacity = options_.result_cache_capacity;
    result_cache_ = std::make_unique<ResultCache>(schema_, cache_options);
  }
}

Result<std::unique_ptr<ServingExecutor>> ServingExecutor::Connect(
    std::vector<Endpoint> endpoints, const Options& options) {
  if (endpoints.empty()) {
    return Status::InvalidArgument("serving front-end needs at least one "
                                   "endpoint");
  }

  // Handshake every backend up front: connect, kHello, parse the ack.
  // Readiness and schema agreement are connect-time invariants, not
  // per-query checks.
  std::unique_ptr<ServingExecutor> executor;
  std::string schema_bytes;
  for (size_t i = 0; i < endpoints.size(); ++i) {
    const Endpoint& endpoint = endpoints[i];
    NOMSKY_ASSIGN_OR_RETURN(
        net::TcpSocket socket,
        net::TcpSocket::Connect(endpoint.host, endpoint.port));
    NOMSKY_RETURN_NOT_OK(net::SendFrame(socket, FrameType::kHello, ""));
    NOMSKY_ASSIGN_OR_RETURN(
        Frame ack,
        net::RecvFrame(socket, options.deadline_ms, options.max_payload));
    if (ack.type != FrameType::kHelloAck) {
      return Status::Internal("backend ", Where(endpoint), " answered Hello "
                              "with a ", net::FrameTypeName(ack.type),
                              " frame");
    }
    std::istringstream in(ack.payload);
    BinaryReader reader(in);
    uint8_t ready = 0;
    if (!reader.Pod(&ready)) {
      return Status::Internal("backend ", Where(endpoint),
                              ": truncated HelloAck");
    }
    if (ready == 0) {
      return Status::Unavailable("backend ", Where(endpoint),
                                 " has no shard image loaded");
    }
    NOMSKY_ASSIGN_OR_RETURN(Schema schema, ReadSchema(reader));
    uint32_t num_shards = 0;
    uint64_t source_rows = 0;
    if (!reader.Pod(&num_shards) || !reader.Pod(&source_rows)) {
      return Status::Internal("backend ", Where(endpoint),
                              ": truncated HelloAck");
    }
    if (executor == nullptr) {
      schema_bytes = SerializeSchema(schema);
      executor.reset(
          new ServingExecutor(std::move(schema), source_rows, options));
    } else {
      if (SerializeSchema(schema) != schema_bytes) {
        return Status::InvalidArgument(
            "backend ", Where(endpoint),
            " serves a different schema than ",
            Where(endpoints.front()));
      }
      if (source_rows != executor->source_rows_) {
        return Status::InvalidArgument(
            "backend ", Where(endpoint), " covers a source table of ",
            source_rows, " rows; ", Where(endpoints.front()), " says ",
            executor->source_rows_,
            " — the backends do not partition one table");
      }
    }
    auto backend = std::make_unique<Backend>();
    backend->endpoint = endpoint;
    backend->socket = std::move(socket);
    backend->num_shards = num_shards;
    executor->backends_.push_back(std::move(backend));
  }
  return executor;
}

Result<Frame> ServingExecutor::Call(Backend& b, FrameType type,
                                    const std::string& payload,
                                    FrameType expected_reply) {
  std::lock_guard<std::mutex> lock(b.mutex);
  for (int attempt = 0;; ++attempt) {
    Status status;
    if (!b.socket.valid()) {
      auto reconnected =
          net::TcpSocket::Connect(b.endpoint.host, b.endpoint.port);
      if (reconnected.ok()) {
        b.socket = std::move(reconnected).ValueOrDie();
      } else {
        status = reconnected.status();
      }
    }
    if (status.ok()) {
      status = net::SendFrame(b.socket, type, payload);
    }
    if (status.ok()) {
      auto reply = net::RecvFrame(b.socket, options_.deadline_ms,
                                  options_.max_payload);
      if (reply.ok()) {
        Frame frame = std::move(reply).ValueOrDie();
        if (frame.type == FrameType::kError) {
          return Status::Internal("backend ", Where(b.endpoint), ": ",
                                  frame.payload);
        }
        if (frame.type != expected_reply) {
          b.socket.Close();
          return Status::Internal("backend ", Where(b.endpoint),
                                  " answered with a ",
                                  net::FrameTypeName(frame.type),
                                  " frame, expected ",
                                  net::FrameTypeName(expected_reply));
        }
        return frame;
      }
      status = reply.status();
    }
    // The connection's framing state is unknown after any failure; drop it
    // so the next exchange starts clean.
    b.socket.Close();
    if (status.IsUnavailable() && attempt == 0) {
      // The peer vanished (reset/EOF/refused). The exchange is idempotent
      // from the protocol's point of view, so reconnect and resend ONCE.
      // DeadlineExceeded is deliberately NOT here: the server may still be
      // executing the request, and a resend would double-run it.
      retries_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    return status;
  }
}

Result<ServeReply> ServingExecutor::Execute(const std::string& query_text) {
  // Admission: increment-then-check keeps the gate a single atomic; the
  // shed path undoes its increment before rejecting.
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) + 1 >
      options_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "serving front-end is at its in-flight bound (",
        options_.max_inflight, "); request shed");
  }
  struct InflightGuard {
    std::atomic<size_t>* counter;
    ~InflightGuard() { counter->fetch_sub(1, std::memory_order_acq_rel); }
  } guard{&inflight_};

  auto admitted = [&]() -> Result<ServeReply> {
    // One canonicalization serves three purposes: the local cache key, the
    // bytes on the wire (so the servers' caches see one spelling), and the
    // profile the merge pass scores with.
    const std::string canonical = CanonicalQueryText(query_text);
    bool cache_hit = false;
    NOMSKY_ASSIGN_OR_RETURN(std::shared_ptr<const PreferenceProfile> profile,
                            cache_->Get(canonical, &cache_hit));

    // Result cache in front of the fan-out: a hit (exact or by
    // subsumption refilter) answers with ZERO backend round-trips. The
    // generation is read before any backend is called, so a refresh that
    // lands mid-request invalidates the Insert below.
    uint64_t result_generation = 0;
    if (result_cache_ != nullptr) {
      result_generation = result_cache_->generation();
      if (std::optional<ResultCache::Answer> answer =
              result_cache_->Lookup(*profile)) {
        ServeReply out(schema_);
        out.cache_hit = cache_hit;
        out.result_verdict = answer->verdict;
        if (answer->verdict == CacheVerdict::kHit) {
          out.values = answer->entry->values;  // rows align 1:1
        } else {
          PackedBlock winners;
          AnswerNeutralRows(*answer, &winners);
          NOMSKY_ASSIGN_OR_RETURN(
              out.values,
              DatasetFromNeutralPacked(schema_, winners, "cached result"));
        }
        out.rows = std::move(answer->rows);
        return out;
      }
    }

    const size_t n = backends_.size();
    struct BackendRows {
      PackedBlock block;            // neutral-packed winners, global ids
      std::optional<Dataset> data;  // the same rows as columns
      std::vector<RowId> ids;
    };
    std::vector<BackendRows> shard_rows(n);
    std::vector<Status> statuses(n);
    ParallelFor(options_.pool, n, [&](size_t i) {
      auto reply = Call(*backends_[i], FrameType::kQuery, canonical,
                        FrameType::kQueryResult);
      if (!reply.ok()) {
        statuses[i] = reply.status();
        return;
      }
      std::istringstream in(reply->payload);
      BinaryReader reader(in);
      BackendRows& rows = shard_rows[i];
      if (!rows.block.ReadFrom(reader, /*max_rows=*/source_rows_,
                               /*expected_stride=*/0)) {
        statuses[i] = Status::Internal("backend ",
                                       Where(backends_[i]->endpoint),
                                       ": malformed query result");
        return;
      }
      auto data = DatasetFromNeutralPacked(
          schema_, rows.block,
          "query result from " + Where(backends_[i]->endpoint));
      if (!data.ok()) {
        statuses[i] = data.status();
        return;
      }
      rows.data.emplace(std::move(data).ValueOrDie());
      rows.ids.resize(rows.block.size());
      for (size_t r = 0; r < rows.ids.size(); ++r) {
        rows.ids[r] = rows.block.row_id(r);
      }
    });
    for (const Status& status : statuses) {
      NOMSKY_RETURN_NOT_OK(status);
    }

    ServeReply out(schema_);
    out.cache_hit = cache_hit;
    if (n == 1) {
      // One backend answers with the exact skyline already — its reply IS
      // the result.
      out.rows = std::move(shard_rows[0].ids);
      out.values = std::move(*shard_rows[0].data);
      if (result_cache_ != nullptr) {
        result_cache_->Insert(*profile, result_generation, out.rows,
                              shard_rows[0].block);
      }
      return out;
    }

    // Cross-backend merge: each backend is one "shard" whose local skyline
    // is everything it returned (identity ids into its mini dataset), with
    // the received global ids as the local→global map. Same candidate set,
    // same (score, global id) order, same extraction pass as a local
    // ShardedEngine — hence byte-identical results.
    std::vector<std::vector<RowId>> identity(n);
    std::vector<ShardSpan> spans(n);
    for (size_t i = 0; i < n; ++i) {
      identity[i].resize(shard_rows[i].ids.size());
      std::iota(identity[i].begin(), identity[i].end(), RowId{0});
      spans[i] = ShardSpan{&*shard_rows[i].data, &shard_rows[i].block,
                           &identity[i], &shard_rows[i].ids};
    }
    out.rows = MergeShardSkylines(*profile, spans);

    // Rebuild the winners' values: map global id -> (backend, local row),
    // splice the neutral bytes into one block, transpose once.
    std::unordered_map<RowId, std::pair<size_t, RowId>> where;
    size_t candidates = 0;
    for (const BackendRows& rows : shard_rows) candidates += rows.ids.size();
    where.reserve(candidates);
    for (size_t i = 0; i < n; ++i) {
      for (size_t r = 0; r < shard_rows[i].ids.size(); ++r) {
        where.emplace(shard_rows[i].ids[r],
                      std::make_pair(i, static_cast<RowId>(r)));
      }
    }
    PackedBlock winners;
    winners.Reset(shard_rows[0].block.stride());
    for (RowId g : out.rows) {
      const auto& [i, local] = where.at(g);
      winners.AppendRaw(shard_rows[i].block.row(local), g);
    }
    NOMSKY_ASSIGN_OR_RETURN(
        out.values,
        DatasetFromNeutralPacked(schema_, winners, "merged query result"));
    if (result_cache_ != nullptr) {
      result_cache_->Insert(*profile, result_generation, out.rows, winners);
    }
    return out;
  };

  Result<ServeReply> result = admitted();
  if (result.ok()) {
    queries_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failures_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

Status ServingExecutor::Refresh(size_t b, uint32_t shard,
                                const std::string& image_bytes) {
  if (b >= backends_.size()) {
    return Status::OutOfRange("backend ", b, " out of range (",
                              backends_.size(), " connected)");
  }
  std::ostringstream out;
  BinaryWriter writer(out);
  writer.Pod<uint32_t>(shard);
  writer.Bytes(image_bytes.data(), image_bytes.size());
  NOMSKY_ASSIGN_OR_RETURN(Frame reply,
                          Call(*backends_[b], FrameType::kRefresh,
                               std::move(out).str(), FrameType::kOk));
  (void)reply;
  // Invalidate AFTER the backend acknowledged the swap: any cached entry —
  // even one inserted from a query racing the refresh — predates this bump
  // and dies; a later query re-fans-out and sees the new shard.
  if (result_cache_ != nullptr) result_cache_->Invalidate();
  return Status::OK();
}

Result<uint64_t> ServingExecutor::Rematerialize(size_t b, uint32_t topk) {
  if (b >= backends_.size()) {
    return Status::OutOfRange("backend ", b, " out of range (",
                              backends_.size(), " connected)");
  }
  std::ostringstream out;
  BinaryWriter writer(out);
  writer.Pod<uint32_t>(topk);
  NOMSKY_ASSIGN_OR_RETURN(Frame reply,
                          Call(*backends_[b], FrameType::kRematerialize,
                               std::move(out).str(), FrameType::kOk));
  // Deliberately NO result-cache invalidation (contrast Refresh): a
  // re-materialization re-tunes WHICH sub-engine answers on the backend,
  // never the answer itself, so every cached entry stays byte-identical to
  // a fresh fan-out.
  std::istringstream in(reply.payload);
  BinaryReader reader(in);
  uint64_t tree_epoch = 0;
  if (!reader.Pod(&tree_epoch)) {
    return Status::Internal("backend ", Where(backends_[b]->endpoint),
                            ": truncated rematerialize reply");
  }
  return tree_epoch;
}

Status ServingExecutor::PushImage(size_t b, const std::string& image_bytes) {
  if (b >= backends_.size()) {
    return Status::OutOfRange("backend ", b, " out of range (",
                              backends_.size(), " connected)");
  }
  NOMSKY_ASSIGN_OR_RETURN(Frame reply,
                          Call(*backends_[b], FrameType::kLoadShard,
                               image_bytes, FrameType::kOk));
  (void)reply;
  if (result_cache_ != nullptr) result_cache_->Invalidate();
  return Status::OK();
}

Result<ShardServerStats> ServingExecutor::ServerStats(size_t b) {
  if (b >= backends_.size()) {
    return Status::OutOfRange("backend ", b, " out of range (",
                              backends_.size(), " connected)");
  }
  NOMSKY_ASSIGN_OR_RETURN(Frame reply,
                          Call(*backends_[b], FrameType::kStats, "",
                               FrameType::kStatsResult));
  std::istringstream in(reply.payload);
  BinaryReader reader(in);
  ShardServerStats stats;
  if (!reader.Pod(&stats.queries) || !reader.Pod(&stats.query_failures) ||
      !reader.Pod(&stats.refreshes) || !reader.Pod(&stats.loads) ||
      !reader.Pod(&stats.rejected_frames) || !reader.Pod(&stats.cache_hits) ||
      !reader.Pod(&stats.cache_misses) ||
      !reader.Pod(&stats.rematerializations)) {
    return Status::Internal("backend ", Where(backends_[b]->endpoint),
                            ": truncated stats reply");
  }
  return stats;
}

Status ServingExecutor::ShutdownAll() {
  Status first_error;
  for (auto& backend : backends_) {
    auto reply =
        Call(*backend, FrameType::kShutdown, "", FrameType::kOk);
    if (!reply.ok() && first_error.ok()) first_error = reply.status();
    // The server closes the connection right after the ack; drop ours too.
    std::lock_guard<std::mutex> lock(backend->mutex);
    backend->socket.Close();
  }
  return first_error;
}

ServingExecutorStats ServingExecutor::stats() const {
  ServingExecutorStats stats;
  stats.queries = queries_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.failures = failures_.load(std::memory_order_relaxed);
  const ParsedQueryCache::Stats cache = cache_->stats();
  stats.cache_hits = cache.hits;
  stats.cache_misses = cache.misses;
  if (result_cache_ != nullptr) {
    const ResultCache::Stats rc = result_cache_->stats();
    stats.result_exact_hits = rc.exact_hits;
    stats.result_subsumed_hits = rc.subsumed_hits;
    stats.result_misses = rc.misses;
    stats.result_evictions = rc.evictions;
    stats.result_invalidations = rc.invalidations;
  }
  return stats;
}

}  // namespace serve
}  // namespace nomsky
