// ServingExecutor: the query front-end of the networked serving stack.
//
// It speaks the frame protocol (net/frame.h) to a set of shard servers,
// each holding a private slice of one source table, and answers queries
// with exactly the semantics of a local ShardedEngine over the same total
// partition: every backend returns its slice's exact skyline as global ids
// plus the winning rows NEUTRAL-packed, the front-end transposes those
// bytes back into mini Datasets (DatasetFromNeutralPacked) and runs the
// same MergeShardSkylines pass a local engine runs across its shards.
// Scores come from identical row values and candidates sort by
// (score, global id), so the result is byte-identical to the local engine —
// tests/serving_executor_test.cc asserts exactly that.
//
// Admission control (the knobs bench_serving stresses):
//   * bounded in-flight: at most Options::max_inflight Execute() calls run
//     concurrently; excess requests are SHED immediately with
//     ResourceExhausted — the front-end degrades by rejecting, not by
//     queueing into collapse;
//   * per-request deadline: every backend read budgets
//     Options::deadline_ms; a silent backend yields DeadlineExceeded,
//     which is NEVER retried (the request may be executing remotely — a
//     retry would double-run it);
//   * one retry on reset: Unavailable (peer reset / EOF) triggers ONE
//     reconnect + resend per backend per request — queries are read-only
//     and idempotent, so the lost-reply race is harmless. A second failure
//     propagates.
//
// Parsed once, executed everywhere: query text canonicalizes through the
// shared ParsedQueryCache form, the canonical string is what travels (so
// respaced spellings hit the servers' caches too), and the front-end's own
// cache supplies the profile the merge pass needs.
//
// Thread-safe: Execute() may be called from many threads; each backend
// connection is leased to one request at a time (per-backend mutex), and
// the fan-out across backends runs on Options::pool when one is given.

#ifndef NOMSKY_SERVE_SERVING_EXECUTOR_H_
#define NOMSKY_SERVE_SERVING_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/result.h"
#include "common/schema.h"
#include "exec/result_cache.h"
#include "exec/thread_pool.h"
#include "net/frame.h"
#include "net/socket.h"
#include "serve/query_cache.h"
#include "serve/shard_server.h"

namespace nomsky {
namespace serve {

/// \brief One shard server's address.
struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

/// \brief One answered query: global row ids in emission (score) order and
/// the matching row values, rebuilt from the neutral-packed bytes the
/// servers shipped.
struct ServeReply {
  explicit ServeReply(Schema schema) : values(std::move(schema)) {}

  std::vector<RowId> rows;  ///< global ids, same order as `values` rows
  Dataset values;           ///< row i holds the values of rows[i]
  bool cache_hit = false;   ///< front-end parsed-query cache hit
  /// Result-cache resolution: kHit / kSubsumed answered WITHOUT any
  /// backend round-trip; kMiss ran the fan-out (also reported when the
  /// result cache is disabled).
  CacheVerdict result_verdict = CacheVerdict::kMiss;
};

/// \brief Front-end counters (shed/retried are the admission-control
/// observables the tests pin down).
struct ServingExecutorStats {
  uint64_t queries = 0;   ///< Execute() calls admitted and answered OK
  uint64_t shed = 0;      ///< rejected by the in-flight bound
  uint64_t retries = 0;   ///< reconnect-and-resend cycles taken
  uint64_t failures = 0;  ///< admitted calls that returned an error
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Result-cache counters (0 when the result cache is disabled).
  uint64_t result_exact_hits = 0;
  uint64_t result_subsumed_hits = 0;
  uint64_t result_misses = 0;
  uint64_t result_evictions = 0;
  uint64_t result_invalidations = 0;
};

class ServingExecutor {
 public:
  struct Options {
    size_t max_inflight = 64;    ///< concurrent Execute() bound (>= 1)
    int deadline_ms = 10'000;    ///< per-backend-read budget per request
    size_t cache_capacity = 256; ///< parsed-query cache bound
    /// Result-cache entries in front of the fan-out (exec/result_cache.h):
    /// exact profile repeats and refinements of cached profiles are
    /// answered locally, with zero backend round-trips. 0 disables.
    size_t result_cache_capacity = 128;
    uint32_t max_payload = net::kDefaultMaxPayload;
    ThreadPool* pool = nullptr;  ///< backend fan-out; null = sequential
  };

  /// \brief Connects to every endpoint and handshakes (kHello): every
  /// backend must be READY (image loaded) and all must serve the same
  /// schema. Global ids must be disjoint across backends — they partition
  /// one source table; the executor checks they agree on its row bound.
  static Result<std::unique_ptr<ServingExecutor>> Connect(
      std::vector<Endpoint> endpoints, const Options& options);

  /// \brief Parses (through the cache), fans out, merges. See the header
  /// comment for the admission-control and retry contract.
  Result<ServeReply> Execute(const std::string& query_text);

  /// \brief Applies a single-shard refresh image to backend `b`'s shard
  /// `shard` (kRefresh). `image_bytes` is the serialized image.
  Status Refresh(size_t b, uint32_t shard, const std::string& image_bytes);

  /// \brief Pushes a full shard image to backend `b` (kLoadShard) — the
  /// remote-bootstrap path.
  Status PushImage(size_t b, const std::string& image_bytes);

  /// \brief Asks backend `b` to re-materialize its IPO-Tree-k from its
  /// recorded query history with `topk` values per dimension (0 = the
  /// server's default width); returns the backend's new tree epoch. The
  /// swap is answer-preserving, so — unlike Refresh — the front-end result
  /// cache is NOT invalidated.
  Result<uint64_t> Rematerialize(size_t b, uint32_t topk = 0);

  /// \brief Fetches backend `b`'s serving counters (kStats).
  Result<ShardServerStats> ServerStats(size_t b);

  /// \brief Asks every backend to stop (kShutdown). Best-effort: returns
  /// the first error but still contacts the rest.
  Status ShutdownAll();

  const Schema& schema() const { return schema_; }
  size_t num_backends() const { return backends_.size(); }
  /// \brief Source-table row bound all backends agreed on at handshake.
  uint64_t source_rows() const { return source_rows_; }

  ServingExecutorStats stats() const;
  const ParsedQueryCache& cache() const { return *cache_; }
  /// \brief The fan-out-fronting result cache, or null when disabled.
  const ResultCache* result_cache() const { return result_cache_.get(); }

 private:
  struct Backend {
    Endpoint endpoint;
    std::mutex mutex;  // leases the connection to one request at a time
    net::TcpSocket socket;
    uint32_t num_shards = 0;
  };

  ServingExecutor(Schema schema, uint64_t source_rows, const Options& options);

  /// \brief One request/reply exchange on backend `b`: lease, send, read
  /// with the deadline, reconnect + resend ONCE on Unavailable. A kError
  /// reply surfaces as Internal carrying the server's message.
  Result<net::Frame> Call(Backend& b, net::FrameType type,
                          const std::string& payload,
                          net::FrameType expected_reply);

  Schema schema_;
  uint64_t source_rows_ = 0;
  Options options_;
  std::unique_ptr<ParsedQueryCache> cache_;
  std::unique_ptr<ResultCache> result_cache_;  // null when disabled
  std::vector<std::unique_ptr<Backend>> backends_;

  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> failures_{0};
};

}  // namespace serve
}  // namespace nomsky

#endif  // NOMSKY_SERVE_SERVING_EXECUTOR_H_
