#include "serve/query_cache.h"

#include <utility>

#include "common/string_util.h"

namespace nomsky {
namespace serve {

std::string CanonicalQueryText(const std::string& text) {
  std::string canonical;
  for (const std::string& raw : Split(text, ';')) {
    std::string clause = Trim(raw);
    if (clause.empty()) continue;
    if (!canonical.empty()) canonical += "; ";
    const size_t colon = clause.find(':');
    if (colon == std::string::npos) {
      // Malformed clause: keep it verbatim so the parse error message the
      // user sees names exactly what they typed.
      canonical += clause;
      continue;
    }
    canonical += Trim(clause.substr(0, colon));
    canonical += ": ";
    // Trim per '<'-token (the parser trims exactly so): "A < B" == "A<B",
    // while a value with INTERNAL spaces keeps them.
    bool first = true;
    for (const std::string& token : Split(clause.substr(colon + 1), '<')) {
      if (!first) canonical += '<';
      first = false;
      canonical += Trim(token);
    }
  }
  return canonical;
}

ParsedQueryCache::ParsedQueryCache(const Schema& schema, size_t capacity)
    : schema_(&schema), capacity_(capacity == 0 ? 1 : capacity) {}

Result<std::shared_ptr<const PreferenceProfile>> ParsedQueryCache::Get(
    const std::string& text, bool* was_hit) {
  const std::string key = CanonicalQueryText(text);
  if (was_hit != nullptr) *was_hit = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (was_hit != nullptr) *was_hit = true;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return it->second.profile;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);

  // Parse OUTSIDE the lock: a miss storm must not serialize every worker
  // behind one parse. Two threads may parse the same query concurrently;
  // the second insert finds the entry present and just takes the hit-free
  // existing profile — duplicated work, never duplicated entries.
  NOMSKY_ASSIGN_OR_RETURN(PreferenceProfile parsed,
                          PreferenceProfile::ParseText(*schema_, key));
  auto profile = std::make_shared<const PreferenceProfile>(std::move(parsed));

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return it->second.profile;
  }
  lru_.push_front(key);
  entries_.emplace(key, Entry{profile, lru_.begin()});
  while (entries_.size() > capacity_) {
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  return profile;
}

size_t ParsedQueryCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

ParsedQueryCache::CounterSnapshot ParsedQueryCache::Snapshot() const {
  CounterSnapshot snapshot;
  snapshot.hits = hits_.load(std::memory_order_relaxed);
  snapshot.misses = misses_.load(std::memory_order_relaxed);
  snapshot.evictions = evictions_.load(std::memory_order_relaxed);
  snapshot.size = size();
  snapshot.capacity = capacity_;
  return snapshot;
}

ParsedQueryCache::Stats ParsedQueryCache::stats() const {
  Stats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace serve
}  // namespace nomsky
