#include "serve/shard_server.h"

#include <poll.h>

#include <cerrno>
#include <sstream>
#include <utility>

#include "common/serialize.h"

namespace nomsky {
namespace serve {

using net::Frame;
using net::FrameType;

ShardServer::ShardServer(Options options)
    : options_(std::move(options)),
      pool_(std::make_unique<ThreadPool>(options_.threads)) {}

ShardServer::~ShardServer() { Stop(); }

Status ShardServer::Start() {
  NOMSKY_ASSIGN_OR_RETURN(listener_, net::TcpListener::Listen(options_.port));
  port_ = listener_.port();
  running_.store(true, std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

Status ShardServer::Bootstrap(ShardImage&& image) {
  auto state = std::make_shared<EngineState>();
  state->tmpl = std::make_unique<PreferenceProfile>(image.schema);
  state->history =
      std::make_unique<QueryHistory>(image.schema, options_.history_window);
  EngineOptions engine_options;
  engine_options.build_threads = 0;  // builds always use all cores
  engine_options.query_shards = options_.threads;
  engine_options.pool = pool_.get();
  // The live-history loop: answered queries are recorded (HandleQuery), a
  // kRematerialize verb re-tunes the hybrid trees from the recorded plan,
  // and a threshold > 0 arms the engine's own controller to do that
  // automatically when the observed tree-hit rate decays.
  engine_options.history = state->history.get();
  engine_options.topk = options_.rematerialize_topk;
  engine_options.rematerialize_threshold = options_.rematerialize_threshold;
  engine_options.rematerialize_cooldown = options_.rematerialize_cooldown;
  NOMSKY_ASSIGN_OR_RETURN(
      state->engine,
      ShardedEngine::CreateFromImage(options_.inner_engine, std::move(image),
                                     *state->tmpl, engine_options));
  state->cache = std::make_unique<ParsedQueryCache>(state->engine->schema(),
                                                    options_.cache_capacity);
  {
    std::lock_guard<std::mutex> lock(engine_mutex_);
    engine_state_ = std::move(state);
  }
  loads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

std::shared_ptr<const ShardServer::EngineState> ShardServer::engine_state()
    const {
  std::lock_guard<std::mutex> lock(engine_mutex_);
  return engine_state_;
}

void ShardServer::WaitUntilStopped() {
  {
    std::unique_lock<std::mutex> lock(stopped_mutex_);
    stopped_cv_.wait(lock, [this] {
      return stop_requested_.load(std::memory_order_acquire) ||
             !running_.load(std::memory_order_acquire);
    });
  }
  Stop();
}

void ShardServer::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  listener_.Close();  // wakes the accept loop's next poll
  {
    // stopped_mutex_ serializes concurrent Stop() callers through the join
    // sequence (joinable() checks alone would race).
    std::lock_guard<std::mutex> lock(stopped_mutex_);
    if (accept_thread_.joinable()) accept_thread_.join();
    std::lock_guard<std::mutex> conn_lock(conn_mutex_);
    for (Connection& conn : connections_) {
      if (conn.thread.joinable()) conn.thread.join();
    }
    connections_.clear();
    running_.store(false, std::memory_order_release);
  }
  stopped_cv_.notify_all();
}

void ShardServer::AcceptLoop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    auto accepted = listener_.Accept(/*timeout_ms=*/200);
    if (!accepted.ok()) {
      if (accepted.status().IsDeadlineExceeded()) continue;
      break;  // listener closed (shutdown) or broken
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    std::thread worker(
        [this, done](net::TcpSocket socket) {
          ServeConnection(std::move(socket));
          done->store(true, std::memory_order_release);
        },
        std::move(accepted).ValueOrDie());
    std::lock_guard<std::mutex> lock(conn_mutex_);
    ReapFinishedConnections();
    connections_.push_back(Connection{std::move(worker), std::move(done)});
  }
}

void ShardServer::ReapFinishedConnections() {
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if (it->done->load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void ShardServer::ServeConnection(net::TcpSocket socket) {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    // Idle poll before committing to a frame read: a client may hold the
    // connection open between requests indefinitely, and a blocking read
    // there would pin this thread past Stop(). Once the first byte is in
    // flight the whole frame must land within the io deadline.
    struct pollfd pfd;
    pfd.fd = socket.fd();
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, /*timeout_ms=*/200);
    if (rc == 0) continue;
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    auto frame = net::RecvFrame(socket, options_.io_deadline_ms,
                                options_.max_payload);
    if (!frame.ok()) {
      if (frame.status().IsInvalidArgument()) {
        // Protocol violation: tell the peer why (best effort — it may be
        // gone or hostile), then drop the connection. The framing is lost
        // once a header is rejected, so resynchronization is impossible.
        rejected_frames_.fetch_add(1, std::memory_order_relaxed);
        (void)net::SendFrame(socket, FrameType::kError,
                             frame.status().ToString());
      }
      break;  // EOF, reset, idle-timeout mid-frame: reap quietly
    }
    if (!HandleFrame(socket, std::move(frame).ValueOrDie())) break;
  }
}

bool ShardServer::HandleFrame(net::TcpSocket& socket, Frame&& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      return net::SendFrame(socket, FrameType::kHelloAck, HelloAckPayload())
          .ok();
    case FrameType::kLoadShard: {
      const Status status = HandleLoad(frame.payload);
      if (status.ok()) {
        return net::SendFrame(socket, FrameType::kOk, "").ok();
      }
      return net::SendFrame(socket, FrameType::kError, status.ToString()).ok();
    }
    case FrameType::kQuery: {
      auto reply = HandleQuery(frame.payload);
      if (reply.ok()) {
        queries_.fetch_add(1, std::memory_order_relaxed);
        return net::SendFrame(socket, FrameType::kQueryResult, *reply).ok();
      }
      query_failures_.fetch_add(1, std::memory_order_relaxed);
      return net::SendFrame(socket, FrameType::kError,
                            reply.status().ToString())
          .ok();
    }
    case FrameType::kRefresh: {
      const Status status = HandleRefresh(frame.payload);
      if (status.ok()) {
        refreshes_.fetch_add(1, std::memory_order_relaxed);
        return net::SendFrame(socket, FrameType::kOk, "").ok();
      }
      return net::SendFrame(socket, FrameType::kError, status.ToString()).ok();
    }
    case FrameType::kRematerialize: {
      std::string reply;
      const Status status = HandleRematerialize(frame.payload, &reply);
      if (status.ok()) {
        // stats() reads the swap count straight off the engine, so the
        // counter also covers controller-triggered rebuilds.
        return net::SendFrame(socket, FrameType::kOk, reply).ok();
      }
      return net::SendFrame(socket, FrameType::kError, status.ToString()).ok();
    }
    case FrameType::kStats:
      return net::SendFrame(socket, FrameType::kStatsResult, StatsPayload())
          .ok();
    case FrameType::kShutdown:
      (void)net::SendFrame(socket, FrameType::kOk, "");
      stop_requested_.store(true, std::memory_order_release);
      listener_.Close();
      stopped_cv_.notify_all();  // WaitUntilStopped() performs the joins —
                                 // this thread cannot join itself
      return false;
    default:
      // Structurally valid frame that is not a request (a confused client
      // sending kOk/kQueryResult/... at us). Reject and drop.
      rejected_frames_.fetch_add(1, std::memory_order_relaxed);
      (void)net::SendFrame(socket, FrameType::kError,
                           std::string("unexpected ") +
                               net::FrameTypeName(frame.type) + " frame");
      return false;
  }
}

Status ShardServer::HandleLoad(const std::string& payload) {
  std::istringstream in(payload);
  NOMSKY_ASSIGN_OR_RETURN(ShardImage image,
                          ShardImage::Load(in, "network shard image"));
  return Bootstrap(std::move(image));
}

Status ShardServer::HandleRefresh(const std::string& payload) {
  auto state = engine_state();
  if (state == nullptr) {
    return Status::Unavailable("refresh before any shard image was loaded");
  }
  std::istringstream in(payload);
  BinaryReader reader(in);
  uint32_t shard = 0;
  if (!reader.Pod(&shard)) {
    return Status::InvalidArgument("truncated refresh frame");
  }
  NOMSKY_ASSIGN_OR_RETURN(ShardImage image,
                          ShardImage::Load(in, "refresh image"));
  if (image.num_shards() != 1) {
    return Status::InvalidArgument("a refresh carries exactly one shard, got ",
                                   image.num_shards());
  }
  ShardImage::Shard& fresh = image.shards[0];
  // RebuildShard re-validates schema, row/id counts and global-id bounds.
  return state->engine->RebuildShard(shard, std::move(fresh.data),
                                     std::move(fresh.global_rows));
}

Status ShardServer::HandleRematerialize(const std::string& payload,
                                        std::string* reply) {
  auto state = engine_state();
  if (state == nullptr) {
    return Status::Unavailable(
        "rematerialize before any shard image was loaded");
  }
  std::istringstream in(payload);
  BinaryReader reader(in);
  uint32_t topk = 0;
  if (!reader.Pod(&topk)) {
    return Status::InvalidArgument("truncated rematerialize frame");
  }
  const size_t width = topk != 0 ? topk : options_.rematerialize_topk;
  // An empty history yields an all-empty plan — the tree shrinks to the
  // template skyline. That is a legitimate re-tune (nothing is popular),
  // not an error; Rematerialize still rejects non-hybrid inner engines.
  NOMSKY_RETURN_NOT_OK(
      state->engine->Rematerialize(state->history->MaterializationPlan(width)));
  std::ostringstream out;
  BinaryWriter writer(out);
  writer.Pod<uint64_t>(state->engine->tree_epoch());
  if (!writer.ok()) {
    return Status::Internal("failed to serialize the rematerialize reply");
  }
  *reply = std::move(out).str();
  return Status::OK();
}

Result<std::string> ShardServer::HandleQuery(const std::string& payload) {
  auto state = engine_state();
  if (state == nullptr) {
    return Status::Unavailable("query before any shard image was loaded");
  }
  NOMSKY_ASSIGN_OR_RETURN(std::shared_ptr<const PreferenceProfile> profile,
                          state->cache->Get(payload));
  // Every parsed query feeds the materialization history — the signal the
  // kRematerialize verb and the automatic controller re-tune from.
  state->history->Record(*profile);
  PackedBlock rows;
  NOMSKY_ASSIGN_OR_RETURN(std::vector<RowId> ids,
                          state->engine->QueryServed(*profile, &rows));
  (void)ids;  // the block carries the same global ids, in the same order
  std::ostringstream out;
  BinaryWriter writer(out);
  rows.WriteTo(writer);
  if (!writer.ok()) {
    return Status::Internal("failed to serialize the query result");
  }
  return std::move(out).str();
}

std::string ShardServer::HelloAckPayload() const {
  auto state = engine_state();
  std::ostringstream out;
  BinaryWriter writer(out);
  writer.Pod<uint8_t>(state != nullptr ? 1 : 0);  // ready
  if (state != nullptr) {
    WriteSchema(writer, state->engine->schema());
    writer.Pod<uint32_t>(static_cast<uint32_t>(state->engine->num_shards()));
    writer.Pod<uint64_t>(state->engine->source_rows());
  }
  return std::move(out).str();
}

std::string ShardServer::StatsPayload() const {
  const ShardServerStats snapshot = stats();
  std::ostringstream out;
  BinaryWriter writer(out);
  writer.Pod<uint64_t>(snapshot.queries);
  writer.Pod<uint64_t>(snapshot.query_failures);
  writer.Pod<uint64_t>(snapshot.refreshes);
  writer.Pod<uint64_t>(snapshot.loads);
  writer.Pod<uint64_t>(snapshot.rejected_frames);
  writer.Pod<uint64_t>(snapshot.cache_hits);
  writer.Pod<uint64_t>(snapshot.cache_misses);
  writer.Pod<uint64_t>(snapshot.rematerializations);
  return std::move(out).str();
}

ShardServerStats ShardServer::stats() const {
  ShardServerStats snapshot;
  snapshot.queries = queries_.load(std::memory_order_relaxed);
  snapshot.query_failures = query_failures_.load(std::memory_order_relaxed);
  snapshot.refreshes = refreshes_.load(std::memory_order_relaxed);
  snapshot.loads = loads_.load(std::memory_order_relaxed);
  snapshot.rejected_frames = rejected_frames_.load(std::memory_order_relaxed);
  if (auto state = engine_state()) {
    const ParsedQueryCache::Stats cache = state->cache->stats();
    snapshot.cache_hits = cache.hits;
    snapshot.cache_misses = cache.misses;
    // Counts every completed swap, including controller-triggered ones
    // the manual-verb counter never sees.
    snapshot.rematerializations = state->engine->rematerializations();
  }
  return snapshot;
}

}  // namespace serve
}  // namespace nomsky
