// SIMD dominance kernel implementation. See kernel_simd.h for the design.
//
// Every SIMD function carries a per-function target attribute instead of
// the TU being compiled with -march flags, so the binary stays portable:
// the baseline code paths never emit AVX2/SSE4.2 instructions, and the
// tiered functions are only reached after __builtin_cpu_supports agrees.
//
// Correctness contract: each tier's per-row verdict is byte-identical to
// CompiledProfile::Compare. The numeric section uses ordered-quiet (OQ)
// vector compares, which implement IEEE `<` exactly like the scalar loop
// (NaN compares false both ways, -0.0 == +0.0); the nominal section
// derives the rank order from a 64-bit shift plus signed compare (ranks
// are 32-bit, so the sign bit is never set and signed == unsigned), and
// the clash flag (`distinct values, equal ranks` => incomparable) falls
// out of the same three compares. Lane role masks from the compiled
// profile strip padding lanes and the foreign section in groups that
// straddle the numeric/nominal boundary.

#include "dominance/kernel_simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#define NOMSKY_KERNEL_X86 1
#include <immintrin.h>
#else
#define NOMSKY_KERNEL_X86 0
#endif

namespace nomsky {

namespace {

// Accumulated per-row comparison flags; nonzero means "seen on some
// dimension". Derives the same four-way verdict as the scalar Compare.
struct RowVerdict {
  unsigned left = 0;
  unsigned right = 0;
  unsigned clash = 0;

  bool LeftDominates() const { return left != 0 && right == 0 && clash == 0; }

  DomResult ToResult() const {
    if (clash != 0 || (left != 0 && right != 0)) {
      return DomResult::kIncomparable;
    }
    if (left != 0) return DomResult::kLeftDominates;
    if (right != 0) return DomResult::kRightDominates;
    return DomResult::kEqual;
  }
};

// ---------------------------------------------------------------------------
// Scalar tier: the kernel.h per-pair loop, row by row. Also the only tier
// on non-x86 hosts.
// ---------------------------------------------------------------------------

size_t ScalarFindDominator(const CompiledProfile& profile,
                           const uint64_t* probe, const uint64_t* base,
                           size_t n, size_t stride) {
  const uint64_t* row = base;
  for (size_t i = 0; i < n; ++i, row += stride) {
    if (profile.Compare(row, probe) == DomResult::kLeftDominates) return i;
  }
  return n;
}

size_t ScalarFindRelated(const CompiledProfile& profile, const uint64_t* probe,
                         const uint64_t* base, size_t n, size_t stride,
                         DomResult* result) {
  const uint64_t* row = base;
  for (size_t i = 0; i < n; ++i, row += stride) {
    const DomResult r = profile.Compare(row, probe);
    if (r == DomResult::kLeftDominates || r == DomResult::kRightDominates) {
      *result = r;
      return i;
    }
  }
  return n;
}

size_t ScalarFindDominatorGeneral(const CompiledGeneralProfile& profile,
                                  const uint64_t* probe, const uint64_t* base,
                                  size_t n, size_t stride) {
  const uint64_t* row = base;
  for (size_t i = 0; i < n; ++i, row += stride) {
    if (profile.Compare(row, probe) == DomResult::kLeftDominates) return i;
  }
  return n;
}

// General-model nominal section shared by every tier: continues from the
// numeric flags with the exact early-exit structure of
// CompiledGeneralProfile::Compare, so tiered results cannot drift.
DomResult GeneralNominalScan(const CompiledGeneralProfile& profile,
                             const uint64_t* a, const uint64_t* b,
                             bool num_left, bool num_right) {
  if (num_left && num_right) return DomResult::kIncomparable;
  unsigned left = num_left ? 1u : 0u;
  unsigned right = num_right ? 1u : 0u;
  const size_t nn = profile.num_numeric();
  const size_t nm = profile.num_nominal();
  const uint64_t* na = a + nn;
  const uint64_t* nb = b + nn;
  for (size_t j = 0; j < nm; ++j) {
    const uint64_t va = na[j], vb = nb[j];
    if (va == vb) continue;
    const uint8_t r = profile.relation(j, va, vb);
    if (r == 0) return DomResult::kIncomparable;
    if (r == 1) {
      if (right) return DomResult::kIncomparable;
      left = 1;
    } else {
      if (left) return DomResult::kIncomparable;
      right = 1;
    }
  }
  if (left) return DomResult::kLeftDominates;
  if (right) return DomResult::kRightDominates;
  return DomResult::kEqual;
}

#if NOMSKY_KERNEL_X86

// ---------------------------------------------------------------------------
// AVX2 tier: 4 slots per lane-op.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) inline unsigned Mask4(__m256i v) {
  return static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(v)));
}

__attribute__((target("avx2"))) inline RowVerdict Avx2RowFlags(
    const uint64_t* a, const uint64_t* b, size_t groups,
    const uint8_t* num_masks, const uint8_t* nom_masks) {
  RowVerdict v;
  for (size_t g = 0; g < groups; ++g) {
    const __m256i wa =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * g));
    const __m256i wb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * g));
    const unsigned num = num_masks[g];
    if (num != 0) {
      const __m256d xa = _mm256_castsi256_pd(wa);
      const __m256d xb = _mm256_castsi256_pd(wb);
      v.left |= static_cast<unsigned>(_mm256_movemask_pd(
                    _mm256_cmp_pd(xa, xb, _CMP_LT_OQ))) &
                num;
      v.right |= static_cast<unsigned>(_mm256_movemask_pd(
                     _mm256_cmp_pd(xb, xa, _CMP_LT_OQ))) &
                 num;
    }
    const unsigned nom = nom_masks[g];
    if (nom != 0) {
      const __m256i ra = _mm256_srli_epi64(wa, 32);
      const __m256i rb = _mm256_srli_epi64(wb, 32);
      const unsigned rank_lt = Mask4(_mm256_cmpgt_epi64(rb, ra));
      const unsigned rank_gt = Mask4(_mm256_cmpgt_epi64(ra, rb));
      const unsigned word_eq = Mask4(_mm256_cmpeq_epi64(wa, wb));
      v.left |= rank_lt & nom;
      v.right |= rank_gt & nom;
      v.clash |= ~(rank_lt | rank_gt | word_eq) & nom;
    }
  }
  return v;
}

// The single-cache-line fast path (stride 8 covers every schema of up to 8
// dimensions): the probe's two vectors and their pre-shifted ranks stay in
// registers across the whole window scan, and the two groups are fully
// unrolled.
__attribute__((target("avx2"))) size_t Avx2FindDominator8(
    const CompiledProfile& profile, const uint64_t* probe,
    const uint64_t* base, size_t n) {
  const unsigned num0 = profile.lane4_numeric_masks()[0];
  const unsigned num1 = profile.lane4_numeric_masks()[1];
  const unsigned nom0 = profile.lane4_nominal_masks()[0];
  const unsigned nom1 = profile.lane4_nominal_masks()[1];
  const __m256i pb0 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(probe));
  const __m256i pb1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(probe + 4));
  const __m256d pd0 = _mm256_castsi256_pd(pb0);
  const __m256d pd1 = _mm256_castsi256_pd(pb1);
  const __m256i pr0 = _mm256_srli_epi64(pb0, 32);
  const __m256i pr1 = _mm256_srli_epi64(pb1, 32);

  const uint64_t* row = base;
  for (size_t i = 0; i < n; ++i, row += 8) {
    const __m256i wa0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row));
    const __m256i wa1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 4));
    unsigned left = 0, right = 0, clash = 0;
    if (num0 != 0) {
      const __m256d xa = _mm256_castsi256_pd(wa0);
      left |= static_cast<unsigned>(
                  _mm256_movemask_pd(_mm256_cmp_pd(xa, pd0, _CMP_LT_OQ))) &
              num0;
      right |= static_cast<unsigned>(
                   _mm256_movemask_pd(_mm256_cmp_pd(pd0, xa, _CMP_LT_OQ))) &
               num0;
      // Earliest exit — the scalar loop's numeric/nominal section check: a
      // right flag from the numerics alone already disqualifies the row,
      // skip all nominal work (the common case on anticorrelated data).
      if (right != 0) continue;
    }
    if (nom0 != 0) {
      const __m256i ra = _mm256_srli_epi64(wa0, 32);
      const unsigned rank_lt = Mask4(_mm256_cmpgt_epi64(pr0, ra));
      const unsigned rank_gt = Mask4(_mm256_cmpgt_epi64(ra, pr0));
      const unsigned word_eq = Mask4(_mm256_cmpeq_epi64(wa0, pb0));
      left |= rank_lt & nom0;
      right |= rank_gt & nom0;
      clash |= ~(rank_lt | rank_gt | word_eq) & nom0;
    }
    // Mid-row early exit, same trick the scalar loop plays between its
    // sections: a right or clash flag already disqualifies the row as a
    // dominator, and both only ever accumulate — skip the second group.
    if ((right | clash) != 0) continue;
    if (num1 != 0) {
      const __m256d xa = _mm256_castsi256_pd(wa1);
      left |= static_cast<unsigned>(
                  _mm256_movemask_pd(_mm256_cmp_pd(xa, pd1, _CMP_LT_OQ))) &
              num1;
      right |= static_cast<unsigned>(
                   _mm256_movemask_pd(_mm256_cmp_pd(pd1, xa, _CMP_LT_OQ))) &
               num1;
    }
    if (nom1 != 0) {
      const __m256i ra = _mm256_srli_epi64(wa1, 32);
      const unsigned rank_lt = Mask4(_mm256_cmpgt_epi64(pr1, ra));
      const unsigned rank_gt = Mask4(_mm256_cmpgt_epi64(ra, pr1));
      const unsigned word_eq = Mask4(_mm256_cmpeq_epi64(wa1, pb1));
      left |= rank_lt & nom1;
      right |= rank_gt & nom1;
      clash |= ~(rank_lt | rank_gt | word_eq) & nom1;
    }
    if (left != 0 && right == 0 && clash == 0) return i;
  }
  return n;
}

__attribute__((target("avx2"))) size_t Avx2FindDominator(
    const CompiledProfile& profile, const uint64_t* probe,
    const uint64_t* base, size_t n, size_t stride) {
  if (stride == 8) return Avx2FindDominator8(profile, probe, base, n);
  const size_t groups = stride / 4;
  const uint8_t* num_masks = profile.lane4_numeric_masks();
  const uint8_t* nom_masks = profile.lane4_nominal_masks();
  const uint64_t* row = base;
  for (size_t i = 0; i < n; ++i, row += stride) {
    unsigned left = 0;
    bool dead = false;
    for (size_t g = 0; g < groups; ++g) {
      const __m256i wa =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 4 * g));
      const __m256i wb = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(probe + 4 * g));
      unsigned disq = 0;
      const unsigned num = num_masks[g];
      if (num != 0) {
        const __m256d xa = _mm256_castsi256_pd(wa);
        const __m256d xb = _mm256_castsi256_pd(wb);
        left |= static_cast<unsigned>(_mm256_movemask_pd(
                    _mm256_cmp_pd(xa, xb, _CMP_LT_OQ))) &
                num;
        disq |= static_cast<unsigned>(_mm256_movemask_pd(
                    _mm256_cmp_pd(xb, xa, _CMP_LT_OQ))) &
                num;
        if (disq != 0) {
          dead = true;  // numeric right flag: skip the nominal compares
          break;
        }
      }
      const unsigned nom = nom_masks[g];
      if (nom != 0) {
        const __m256i ra = _mm256_srli_epi64(wa, 32);
        const __m256i rb = _mm256_srli_epi64(wb, 32);
        const unsigned rank_lt = Mask4(_mm256_cmpgt_epi64(rb, ra));
        const unsigned rank_gt = Mask4(_mm256_cmpgt_epi64(ra, rb));
        const unsigned word_eq = Mask4(_mm256_cmpeq_epi64(wa, wb));
        left |= rank_lt & nom;
        // right flags or clash lanes both disqualify a dominator.
        disq |= (rank_gt | (~(rank_lt | rank_gt | word_eq))) & nom;
      }
      if (disq != 0) {
        dead = true;
        break;
      }
    }
    if (!dead && left != 0) return i;
  }
  return n;
}

__attribute__((target("avx2"))) size_t Avx2FindRelated(
    const CompiledProfile& profile, const uint64_t* probe,
    const uint64_t* base, size_t n, size_t stride, DomResult* result) {
  const size_t groups = stride / 4;
  const uint8_t* num_masks = profile.lane4_numeric_masks();
  const uint8_t* nom_masks = profile.lane4_nominal_masks();
  const uint64_t* row = base;
  for (size_t i = 0; i < n; ++i, row += stride) {
    unsigned left = 0, right = 0;
    bool dead = false;
    for (size_t g = 0; g < groups; ++g) {
      const __m256i wa =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + 4 * g));
      const __m256i wb = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(probe + 4 * g));
      const unsigned num = num_masks[g];
      if (num != 0) {
        const __m256d xa = _mm256_castsi256_pd(wa);
        const __m256d xb = _mm256_castsi256_pd(wb);
        left |= static_cast<unsigned>(_mm256_movemask_pd(
                    _mm256_cmp_pd(xa, xb, _CMP_LT_OQ))) &
                num;
        right |= static_cast<unsigned>(_mm256_movemask_pd(
                     _mm256_cmp_pd(xb, xa, _CMP_LT_OQ))) &
                 num;
      }
      const unsigned nom = nom_masks[g];
      if (nom != 0) {
        const __m256i ra = _mm256_srli_epi64(wa, 32);
        const __m256i rb = _mm256_srli_epi64(wb, 32);
        const unsigned rank_lt = Mask4(_mm256_cmpgt_epi64(rb, ra));
        const unsigned rank_gt = Mask4(_mm256_cmpgt_epi64(ra, rb));
        const unsigned word_eq = Mask4(_mm256_cmpeq_epi64(wa, wb));
        left |= rank_lt & nom;
        right |= rank_gt & nom;
        if ((~(rank_lt | rank_gt | word_eq) & nom) != 0) {
          dead = true;  // clash: incomparable regardless of the rest
          break;
        }
      }
      // Flags both ways: incomparable, no later group can undo it.
      if (left != 0 && right != 0) {
        dead = true;
        break;
      }
    }
    if (!dead && (left != 0) != (right != 0)) {
      *result = left != 0 ? DomResult::kLeftDominates
                          : DomResult::kRightDominates;
      return i;
    }
  }
  return n;
}

__attribute__((target("avx2"))) DomResult Avx2ComparePair(
    const CompiledProfile& profile, const uint64_t* a, const uint64_t* b) {
  return Avx2RowFlags(a, b, profile.row_slots() / 4,
                      profile.lane4_numeric_masks(),
                      profile.lane4_nominal_masks())
      .ToResult();
}

// General model: vectorized numeric flags only; a row whose numeric
// section already favors the probe can never dominate, so the scalar
// relation-table scan runs only for numerically plausible rows.
__attribute__((target("avx2"))) inline void Avx2NumericFlags(
    const uint64_t* a, const uint64_t* b, size_t groups,
    const uint8_t* num_masks, unsigned* left, unsigned* right) {
  unsigned l = 0, r = 0;
  for (size_t g = 0; g < groups; ++g) {
    const unsigned num = num_masks[g];
    if (num == 0) continue;
    const __m256d xa = _mm256_castsi256_pd(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + 4 * g)));
    const __m256d xb = _mm256_castsi256_pd(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + 4 * g)));
    l |= static_cast<unsigned>(
             _mm256_movemask_pd(_mm256_cmp_pd(xa, xb, _CMP_LT_OQ))) &
         num;
    r |= static_cast<unsigned>(
             _mm256_movemask_pd(_mm256_cmp_pd(xb, xa, _CMP_LT_OQ))) &
         num;
  }
  *left = l;
  *right = r;
}

__attribute__((target("avx2"))) size_t Avx2FindDominatorGeneral(
    const CompiledGeneralProfile& profile, const uint64_t* probe,
    const uint64_t* base, size_t n, size_t stride) {
  const size_t groups = (profile.num_numeric() + 3) / 4;
  const uint8_t* num_masks = profile.lane4_numeric_masks();
  const uint64_t* row = base;
  for (size_t i = 0; i < n; ++i, row += stride) {
    unsigned left = 0, right = 0;
    Avx2NumericFlags(row, probe, groups, num_masks, &left, &right);
    if (right != 0) continue;  // probe strictly better somewhere
    if (GeneralNominalScan(profile, row, probe, left != 0, false) ==
        DomResult::kLeftDominates) {
      return i;
    }
  }
  return n;
}

__attribute__((target("avx2"))) DomResult Avx2ComparePairGeneral(
    const CompiledGeneralProfile& profile, const uint64_t* a,
    const uint64_t* b) {
  unsigned left = 0, right = 0;
  Avx2NumericFlags(a, b, (profile.num_numeric() + 3) / 4,
                   profile.lane4_numeric_masks(), &left, &right);
  return GeneralNominalScan(profile, a, b, left != 0, right != 0);
}

// ---------------------------------------------------------------------------
// SSE4.2 tier: 2 slots per lane-op (PCMPGTQ is the SSE4.2 requirement).
// ---------------------------------------------------------------------------

__attribute__((target("sse4.2"))) inline unsigned Mask2(__m128i v) {
  return static_cast<unsigned>(_mm_movemask_pd(_mm_castsi128_pd(v)));
}

__attribute__((target("sse4.2"))) inline RowVerdict Sse42RowFlags(
    const uint64_t* a, const uint64_t* b, size_t groups,
    const uint8_t* num_masks, const uint8_t* nom_masks) {
  RowVerdict v;
  for (size_t g = 0; g < groups; ++g) {
    const __m128i wa =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 2 * g));
    const __m128i wb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + 2 * g));
    const unsigned num = num_masks[g];
    if (num != 0) {
      const __m128d xa = _mm_castsi128_pd(wa);
      const __m128d xb = _mm_castsi128_pd(wb);
      v.left |=
          static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(xa, xb))) & num;
      v.right |=
          static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(xb, xa))) & num;
    }
    const unsigned nom = nom_masks[g];
    if (nom != 0) {
      const __m128i ra = _mm_srli_epi64(wa, 32);
      const __m128i rb = _mm_srli_epi64(wb, 32);
      const unsigned rank_lt = Mask2(_mm_cmpgt_epi64(rb, ra));
      const unsigned rank_gt = Mask2(_mm_cmpgt_epi64(ra, rb));
      const unsigned word_eq = Mask2(_mm_cmpeq_epi64(wa, wb));
      v.left |= rank_lt & nom;
      v.right |= rank_gt & nom;
      v.clash |= ~(rank_lt | rank_gt | word_eq) & nom;
    }
  }
  return v;
}

__attribute__((target("sse4.2"))) size_t Sse42FindDominator(
    const CompiledProfile& profile, const uint64_t* probe,
    const uint64_t* base, size_t n, size_t stride) {
  const size_t groups = stride / 2;
  const uint8_t* num_masks = profile.lane2_numeric_masks();
  const uint8_t* nom_masks = profile.lane2_nominal_masks();
  const uint64_t* row = base;
  for (size_t i = 0; i < n; ++i, row += stride) {
    unsigned left = 0;
    bool dead = false;
    for (size_t g = 0; g < groups; ++g) {
      const __m128i wa =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 2 * g));
      const __m128i wb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(probe + 2 * g));
      unsigned disq = 0;
      const unsigned num = num_masks[g];
      if (num != 0) {
        const __m128d xa = _mm_castsi128_pd(wa);
        const __m128d xb = _mm_castsi128_pd(wb);
        left |= static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(xa, xb))) &
                num;
        disq |= static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(xb, xa))) &
                num;
        if (disq != 0) {
          dead = true;  // numeric right flag: skip the nominal compares
          break;
        }
      }
      const unsigned nom = nom_masks[g];
      if (nom != 0) {
        const __m128i ra = _mm_srli_epi64(wa, 32);
        const __m128i rb = _mm_srli_epi64(wb, 32);
        const unsigned rank_lt = Mask2(_mm_cmpgt_epi64(rb, ra));
        const unsigned rank_gt = Mask2(_mm_cmpgt_epi64(ra, rb));
        const unsigned word_eq = Mask2(_mm_cmpeq_epi64(wa, wb));
        left |= rank_lt & nom;
        disq |= (rank_gt | (~(rank_lt | rank_gt | word_eq))) & nom;
      }
      if (disq != 0) {
        dead = true;
        break;
      }
    }
    if (!dead && left != 0) return i;
  }
  return n;
}

__attribute__((target("sse4.2"))) size_t Sse42FindRelated(
    const CompiledProfile& profile, const uint64_t* probe,
    const uint64_t* base, size_t n, size_t stride, DomResult* result) {
  const size_t groups = stride / 2;
  const uint8_t* num_masks = profile.lane2_numeric_masks();
  const uint8_t* nom_masks = profile.lane2_nominal_masks();
  const uint64_t* row = base;
  for (size_t i = 0; i < n; ++i, row += stride) {
    unsigned left = 0, right = 0;
    bool dead = false;
    for (size_t g = 0; g < groups; ++g) {
      const __m128i wa =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 2 * g));
      const __m128i wb =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(probe + 2 * g));
      const unsigned num = num_masks[g];
      if (num != 0) {
        const __m128d xa = _mm_castsi128_pd(wa);
        const __m128d xb = _mm_castsi128_pd(wb);
        left |= static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(xa, xb))) &
                num;
        right |=
            static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(xb, xa))) &
            num;
      }
      const unsigned nom = nom_masks[g];
      if (nom != 0) {
        const __m128i ra = _mm_srli_epi64(wa, 32);
        const __m128i rb = _mm_srli_epi64(wb, 32);
        const unsigned rank_lt = Mask2(_mm_cmpgt_epi64(rb, ra));
        const unsigned rank_gt = Mask2(_mm_cmpgt_epi64(ra, rb));
        const unsigned word_eq = Mask2(_mm_cmpeq_epi64(wa, wb));
        left |= rank_lt & nom;
        right |= rank_gt & nom;
        if ((~(rank_lt | rank_gt | word_eq) & nom) != 0) {
          dead = true;
          break;
        }
      }
      if (left != 0 && right != 0) {
        dead = true;
        break;
      }
    }
    if (!dead && (left != 0) != (right != 0)) {
      *result = left != 0 ? DomResult::kLeftDominates
                          : DomResult::kRightDominates;
      return i;
    }
  }
  return n;
}

__attribute__((target("sse4.2"))) DomResult Sse42ComparePair(
    const CompiledProfile& profile, const uint64_t* a, const uint64_t* b) {
  return Sse42RowFlags(a, b, profile.row_slots() / 2,
                       profile.lane2_numeric_masks(),
                       profile.lane2_nominal_masks())
      .ToResult();
}

__attribute__((target("sse4.2"))) inline void Sse42NumericFlags(
    const uint64_t* a, const uint64_t* b, size_t groups,
    const uint8_t* num_masks, unsigned* left, unsigned* right) {
  unsigned l = 0, r = 0;
  for (size_t g = 0; g < groups; ++g) {
    const unsigned num = num_masks[g];
    if (num == 0) continue;
    const __m128d xa = _mm_castsi128_pd(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + 2 * g)));
    const __m128d xb = _mm_castsi128_pd(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + 2 * g)));
    l |= static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(xa, xb))) & num;
    r |= static_cast<unsigned>(_mm_movemask_pd(_mm_cmplt_pd(xb, xa))) & num;
  }
  *left = l;
  *right = r;
}

__attribute__((target("sse4.2"))) size_t Sse42FindDominatorGeneral(
    const CompiledGeneralProfile& profile, const uint64_t* probe,
    const uint64_t* base, size_t n, size_t stride) {
  const size_t groups = (profile.num_numeric() + 1) / 2;
  const uint8_t* num_masks = profile.lane2_numeric_masks();
  const uint64_t* row = base;
  for (size_t i = 0; i < n; ++i, row += stride) {
    unsigned left = 0, right = 0;
    Sse42NumericFlags(row, probe, groups, num_masks, &left, &right);
    if (right != 0) continue;
    if (GeneralNominalScan(profile, row, probe, left != 0, false) ==
        DomResult::kLeftDominates) {
      return i;
    }
  }
  return n;
}

__attribute__((target("sse4.2"))) DomResult Sse42ComparePairGeneral(
    const CompiledGeneralProfile& profile, const uint64_t* a,
    const uint64_t* b) {
  unsigned left = 0, right = 0;
  Sse42NumericFlags(a, b, (profile.num_numeric() + 1) / 2,
                    profile.lane2_numeric_masks(), &left, &right);
  return GeneralNominalScan(profile, a, b, left != 0, right != 0);
}

#endif  // NOMSKY_KERNEL_X86

// ---------------------------------------------------------------------------
// Dispatch state.
// ---------------------------------------------------------------------------

// ForceKernelTier override; kTierNoForce when dispatch follows the
// environment / CPU detection.
std::atomic<int> g_forced_tier{kTierNoForce};

// Highest available tier at or below the requested one.
KernelTier ClampToAvailable(KernelTier tier) {
  while (tier != KernelTier::kScalar && !KernelTierAvailable(tier)) {
    tier = static_cast<KernelTier>(static_cast<uint8_t>(tier) - 1);
  }
  return tier;
}

KernelTier TierFromEnvironment() {
  const char* force = std::getenv("NOMSKY_FORCE_SCALAR_KERNEL");
  if (force != nullptr && *force != '\0' && std::strcmp(force, "0") != 0) {
    return KernelTier::kScalar;
  }
  const char* name = std::getenv("NOMSKY_KERNEL_TIER");
  if (name != nullptr) {
    if (std::strcmp(name, "scalar") == 0) return KernelTier::kScalar;
    if (std::strcmp(name, "sse42") == 0) {
      return ClampToAvailable(KernelTier::kSse42);
    }
    if (std::strcmp(name, "avx2") == 0) {
      return ClampToAvailable(KernelTier::kAvx2);
    }
    // Unknown names fall through to detection rather than aborting a
    // serving process over a typo.
  }
  return DetectBestKernelTier();
}

}  // namespace

const char* KernelTierName(KernelTier tier) {
  switch (tier) {
    case KernelTier::kAvx2:
      return "avx2";
    case KernelTier::kSse42:
      return "sse42";
    case KernelTier::kScalar:
      break;
  }
  return "scalar";
}

KernelTier DetectBestKernelTier() {
#if NOMSKY_KERNEL_X86
  static const KernelTier best = [] {
    if (__builtin_cpu_supports("avx2")) return KernelTier::kAvx2;
    if (__builtin_cpu_supports("sse4.2")) return KernelTier::kSse42;
    return KernelTier::kScalar;
  }();
  return best;
#else
  return KernelTier::kScalar;
#endif
}

bool KernelTierAvailable(KernelTier tier) {
  return static_cast<uint8_t>(tier) <=
         static_cast<uint8_t>(DetectBestKernelTier());
}

std::vector<KernelTier> AvailableKernelTiers() {
  std::vector<KernelTier> tiers;
  for (uint8_t t = 0; t <= static_cast<uint8_t>(DetectBestKernelTier());
       ++t) {
    tiers.push_back(static_cast<KernelTier>(t));
  }
  return tiers;
}

KernelTier ActiveKernelTier() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced != kTierNoForce) return static_cast<KernelTier>(forced);
  static const KernelTier env_tier = TierFromEnvironment();
  return env_tier;
}

void ForceKernelTier(int tier_or_no_force) {
  if (tier_or_no_force == kTierNoForce) {
    g_forced_tier.store(kTierNoForce, std::memory_order_relaxed);
    return;
  }
  const KernelTier clamped =
      ClampToAvailable(static_cast<KernelTier>(tier_or_no_force));
  g_forced_tier.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Tier-explicit entry points.
// ---------------------------------------------------------------------------

size_t FindDominatorTier(KernelTier tier, const CompiledProfile& profile,
                         const uint64_t* probe, const uint64_t* base,
                         size_t n, size_t stride) {
#if NOMSKY_KERNEL_X86
  if (tier == KernelTier::kAvx2) {
    return Avx2FindDominator(profile, probe, base, n, stride);
  }
  if (tier == KernelTier::kSse42) {
    return Sse42FindDominator(profile, probe, base, n, stride);
  }
#else
  (void)tier;
#endif
  return ScalarFindDominator(profile, probe, base, n, stride);
}

size_t FindRelatedTier(KernelTier tier, const CompiledProfile& profile,
                       const uint64_t* probe, const uint64_t* base, size_t n,
                       size_t stride, DomResult* result) {
#if NOMSKY_KERNEL_X86
  if (tier == KernelTier::kAvx2) {
    return Avx2FindRelated(profile, probe, base, n, stride, result);
  }
  if (tier == KernelTier::kSse42) {
    return Sse42FindRelated(profile, probe, base, n, stride, result);
  }
#else
  (void)tier;
#endif
  return ScalarFindRelated(profile, probe, base, n, stride, result);
}

DomResult ComparePairTier(KernelTier tier, const CompiledProfile& profile,
                          const uint64_t* a, const uint64_t* b) {
#if NOMSKY_KERNEL_X86
  if (tier == KernelTier::kAvx2) return Avx2ComparePair(profile, a, b);
  if (tier == KernelTier::kSse42) return Sse42ComparePair(profile, a, b);
#else
  (void)tier;
#endif
  return profile.Compare(a, b);
}

size_t FindDominatorTier(KernelTier tier,
                         const CompiledGeneralProfile& profile,
                         const uint64_t* probe, const uint64_t* base,
                         size_t n, size_t stride) {
#if NOMSKY_KERNEL_X86
  if (tier == KernelTier::kAvx2) {
    return Avx2FindDominatorGeneral(profile, probe, base, n, stride);
  }
  if (tier == KernelTier::kSse42) {
    return Sse42FindDominatorGeneral(profile, probe, base, n, stride);
  }
#else
  (void)tier;
#endif
  return ScalarFindDominatorGeneral(profile, probe, base, n, stride);
}

DomResult ComparePairTier(KernelTier tier,
                          const CompiledGeneralProfile& profile,
                          const uint64_t* a, const uint64_t* b) {
#if NOMSKY_KERNEL_X86
  if (tier == KernelTier::kAvx2) {
    return Avx2ComparePairGeneral(profile, a, b);
  }
  if (tier == KernelTier::kSse42) {
    return Sse42ComparePairGeneral(profile, a, b);
  }
#else
  (void)tier;
#endif
  return profile.Compare(a, b);
}

// ---------------------------------------------------------------------------
// Dispatched engine-facing entry points (declared in kernel.h).
// ---------------------------------------------------------------------------

size_t CompiledProfile::CompareBlock(const uint64_t* probe,
                                     const uint64_t* base, size_t n,
                                     size_t stride) const {
  return FindDominatorTier(ActiveKernelTier(), *this, probe, base, n, stride);
}

size_t CompiledProfile::CompareBlockRelated(const uint64_t* probe,
                                            const uint64_t* base, size_t n,
                                            size_t stride,
                                            DomResult* result) const {
  return FindRelatedTier(ActiveKernelTier(), *this, probe, base, n, stride,
                         result);
}

size_t CompiledGeneralProfile::CompareBlock(const uint64_t* probe,
                                            const uint64_t* base, size_t n,
                                            size_t stride) const {
  return FindDominatorTier(ActiveKernelTier(), *this, probe, base, n, stride);
}

}  // namespace nomsky
