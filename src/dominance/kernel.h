// Compiled dominance kernel: query-time preference compilation plus
// cache-packed tuple scratch.
//
// DominanceComparator (dominance.h) is the *reference* implementation: per
// pair it re-indexes D separate column vectors through the Dataset and
// re-interprets the preference profile (ImplicitPreference::Compare per
// nominal dimension). Window algorithms call it millions of times per
// query, so the scattered loads and repeated profile interpretation are
// the system's hot path. This header is the compiled counterpart every
// engine runs on:
//
//  * CompiledProfile materializes each nominal dimension's implicit
//    preference into a flat rank[ValueId] array once per query (listed
//    value -> its 0-based choice position, unlisted -> kUnlistedRank) and
//    folds the numeric sign into the packed values, so the per-pair loop
//    never touches the profile again.
//  * Rows are packed row-major into 8-byte slots — sign-folded numeric
//    doubles first, then one uint64 per nominal dimension encoding
//    (rank << 32) | value — padded to a 64-byte cache-line multiple, so a
//    window comparison touches one contiguous tuple per side instead of D
//    column arrays. Padding slots are ZEROED by every pack entry point:
//    full-stride SIMD loads must read defined bytes, and shard images
//    persist packed rows as-is, so deterministic padding is what makes
//    image bytes a pure function of the data.
//  * Compare() returns the same four-way DomResult as the reference via a
//    branch-reduced flag-accumulation loop with early exit. The nominal
//    encoding preserves the paper's semantics exactly: equal slots are the
//    same value; distinct values with equal ranks are two unlisted values,
//    i.e. INCOMPARABLE (Definition 2), never equal.
//
// CompiledGeneralProfile is the same compilation for the general
// partial-order model (arbitrary per-dimension orders): nominal slots hold
// the raw ValueId and each dimension's transitively-closed order is
// flattened into a byte relation table, one load per pair per dimension.
//
// Property tests (tests/dominance_kernel_test.cc) pin both compiled paths
// byte-identical to the reference comparators across all four outcomes.

#ifndef NOMSKY_DOMINANCE_KERNEL_H_
#define NOMSKY_DOMINANCE_KERNEL_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <vector>

#include "common/dataset.h"
#include "dominance/dominance.h"
#include "order/partial_order.h"
#include "order/preference_profile.h"

namespace nomsky {

class BinaryReader;
class BinaryWriter;

/// \brief Cache-line-aligned storage for packed rows. std::vector only
/// guarantees 16-byte alignment; packed rows are padded to 64-byte strides
/// and want their base on a line boundary so one row is one line fetch.
class AlignedRowBuffer {
 public:
  AlignedRowBuffer() = default;

  /// \brief Ensures capacity for `slots` uint64 slots, preserving the first
  /// `live_slots` on growth. Never shrinks.
  void EnsureCapacity(size_t slots, size_t live_slots) {
    if (slots <= capacity_) return;
    size_t grown = capacity_ == 0 ? 64 : capacity_ * 2;
    if (grown < slots) grown = slots;
    uint64_t* fresh = new (std::align_val_t{64}) uint64_t[grown];
    if (live_slots > 0) {
      std::memcpy(fresh, buf_.get(), live_slots * sizeof(uint64_t));
    }
    buf_.reset(fresh);
    capacity_ = grown;
  }

  uint64_t* data() { return buf_.get(); }
  const uint64_t* data() const { return buf_.get(); }
  size_t capacity() const { return capacity_; }

  size_t MemoryUsage() const { return capacity_ * sizeof(uint64_t); }

 private:
  struct Deleter {
    void operator()(uint64_t* p) const {
      ::operator delete[](p, std::align_val_t{64});
    }
  };

  std::unique_ptr<uint64_t[], Deleter> buf_;
  size_t capacity_ = 0;
};

/// \brief One implicit-preference profile compiled to flat lookup state:
/// per-dimension rank[ValueId] arrays plus numeric signs. Cheap to build
/// (O(sum of cardinalities)) — engines compile once per query.
///
/// Borrows nothing: the schema/profile are read at construction only, so a
/// compiled profile outlives the query's PreferenceProfile freely.
class CompiledProfile {
 public:
  /// Rank of every value not listed by the preference. Listed ranks are
  /// 0-based choice positions, so any listed value outranks (is preferred
  /// to) every unlisted one; two distinct values sharing this sentinel are
  /// incomparable, preserving the unlisted-vs-unlisted semantics.
  static constexpr uint32_t kUnlistedRank = 0xFFFFFFFFu;

  CompiledProfile(const Schema& schema, const PreferenceProfile& profile);

  size_t num_numeric() const { return num_numeric_; }
  size_t num_nominal() const { return num_nominal_; }

  /// \brief Slots (8-byte words) per packed row: numeric + nominal count
  /// padded up to a 64-byte (8-slot) multiple.
  size_t row_slots() const { return row_slots_; }

  /// \brief Compiled rank of value v on the j-th nominal dimension.
  uint32_t rank(size_t j, ValueId v) const {
    return ranks_[rank_offset_[j] + v];
  }

  /// \brief Values in the j-th nominal dimension's dictionary (the rank
  /// array covers every ValueId, listed or not).
  size_t cardinality(size_t j) const {
    const size_t end =
        j + 1 < num_nominal_ ? rank_offset_[j + 1] : ranks_.size();
    return end - rank_offset_[j];
  }

  double numeric_sign(size_t i) const { return sign_[i]; }

  /// \brief Packs row `r` of `data` into dest[0, row_slots()): sign-folded
  /// numeric doubles (bit-cast into the slots), then nominal encodings,
  /// then zeroed padding up to the stride.
  /// `data` must match the schema the profile was compiled against.
  /// Inline: window algorithms pack one candidate per outer-loop step.
  void PackRow(const Dataset& data, RowId r, uint64_t* dest) const {
    for (size_t i = 0; i < num_numeric_; ++i) {
      dest[i] = std::bit_cast<uint64_t>(sign_[i] * data.numeric_column(i)[r]);
    }
    uint64_t* nom = dest + num_numeric_;
    for (size_t j = 0; j < num_nominal_; ++j) {
      const ValueId v = data.nominal_column(j)[r];
      nom[j] = (static_cast<uint64_t>(ranks_[rank_offset_[j] + v]) << 32) | v;
    }
    for (size_t k = num_numeric_ + num_nominal_; k < row_slots_; ++k) {
      dest[k] = 0;
    }
  }

  /// \brief Re-derives a packed row under THIS profile from a row packed
  /// under any other CompiledProfile of the same schema. Numeric slots are
  /// profile-independent (signs come from the schema's fixed orientations,
  /// never the query), and a nominal slot's low 32 bits hold the raw
  /// ValueId — so only the nominal rank words need recomputing. This is
  /// what lets shard images store packed rows once and serve every query:
  /// loads skip the Dataset entirely.
  void RepackRow(const uint64_t* src, uint64_t* dest) const {
    std::memcpy(dest, src, num_numeric_ * sizeof(uint64_t));
    const uint64_t* src_nom = src + num_numeric_;
    uint64_t* nom = dest + num_numeric_;
    for (size_t j = 0; j < num_nominal_; ++j) {
      const ValueId v = static_cast<ValueId>(src_nom[j]);
      nom[j] = (static_cast<uint64_t>(ranks_[rank_offset_[j] + v]) << 32) | v;
    }
    // Padding is re-zeroed (never copied): the destination must satisfy the
    // defined-bytes contract even for rows from pre-contract images.
    for (size_t k = num_numeric_ + num_nominal_; k < row_slots_; ++k) {
      dest[k] = 0;
    }
  }

  /// \brief Four-way dominance over two packed rows; byte-identical
  /// outcomes to DominanceComparator::Compare on the unpacked rows.
  DomResult Compare(const uint64_t* a, const uint64_t* b) const {
    unsigned left = 0, right = 0;
    // Numeric section: branchless flag accumulation (no per-dimension
    // branch; the loop auto-vectorizes), one early-exit conflict check
    // before the nominal section.
    for (size_t i = 0; i < num_numeric_; ++i) {
      const double x = std::bit_cast<double>(a[i]);
      const double y = std::bit_cast<double>(b[i]);
      left |= static_cast<unsigned>(x < y);
      right |= static_cast<unsigned>(y < x);
    }
    if (left & right) return DomResult::kIncomparable;
    // Nominal section, also branchless. Rank comparison orders the slots
    // (rank lives in the high word; any listed rank < kUnlistedRank).
    // `clash` collects the paper's key semantic: distinct values with equal
    // ranks are two unlisted values — incomparable, never equal.
    const uint64_t* na = a + num_numeric_;
    const uint64_t* nb = b + num_numeric_;
    unsigned clash = 0;
    for (size_t j = 0; j < num_nominal_; ++j) {
      const uint64_t ea = na[j], eb = nb[j];
      const uint32_t ra = static_cast<uint32_t>(ea >> 32);
      const uint32_t rb = static_cast<uint32_t>(eb >> 32);
      left |= static_cast<unsigned>(ra < rb);
      right |= static_cast<unsigned>(rb < ra);
      clash |= static_cast<unsigned>(ea != eb) &
               static_cast<unsigned>(ra == rb);
    }
    if (clash | (left & right)) return DomResult::kIncomparable;
    if (left) return DomResult::kLeftDominates;
    if (right) return DomResult::kRightDominates;
    return DomResult::kEqual;
  }

  /// \brief One-vs-many scan (kernel_simd.cc, runtime-dispatched SIMD):
  /// index of the first of the n stride-spaced rows at `base` that
  /// DOMINATES `probe`, or n when none does. The probe's vectors load into
  /// registers once for the whole scan — THE window inner loop.
  size_t CompareBlock(const uint64_t* probe, const uint64_t* base, size_t n,
                      size_t stride) const;

  /// \brief BNL's scan: index of the first row strictly related to the
  /// probe either way (row dominates probe, or probe dominates row), or n;
  /// `*result` receives the relation at the returned index. Equal and
  /// incomparable rows are skipped — exactly the entries BNL keeps.
  size_t CompareBlockRelated(const uint64_t* probe, const uint64_t* base,
                             size_t n, size_t stride,
                             DomResult* result) const;

  /// \brief Per-group lane role masks for the SIMD tiers: element g of the
  /// width-4 (AVX2) or width-2 (SSE4.2) array holds one bit per lane of
  /// slot group g flagging it numeric / nominal (padding lanes are in
  /// neither mask). Compiled once so a group straddling the numeric and
  /// nominal sections costs two masked compares instead of a tail loop.
  const uint8_t* lane4_numeric_masks() const { return lane4_num_.data(); }
  const uint8_t* lane4_nominal_masks() const { return lane4_nom_.data(); }
  const uint8_t* lane2_numeric_masks() const { return lane2_num_.data(); }
  const uint8_t* lane2_nominal_masks() const { return lane2_nom_.data(); }

 private:
  size_t num_numeric_ = 0;
  size_t num_nominal_ = 0;
  size_t row_slots_ = 0;
  std::vector<double> sign_;
  std::vector<uint32_t> ranks_;        // flat rank[ValueId], all dims
  std::vector<size_t> rank_offset_;    // per-dimension offset into ranks_
  std::vector<uint8_t> lane4_num_;     // SIMD lane roles, 4-lane groups
  std::vector<uint8_t> lane4_nom_;
  std::vector<uint8_t> lane2_num_;     // SIMD lane roles, 2-lane groups
  std::vector<uint8_t> lane2_nom_;
};

/// \brief The general partial-order model compiled the same way: numeric
/// slots are identical; nominal slots carry the raw ValueId and each
/// dimension's closed order becomes a flat byte table rel[a*c + b]
/// (0 incomparable, 1 a≺b, 2 b≺a), so a pair costs one load instead of two
/// closure-matrix probes.
class CompiledGeneralProfile {
 public:
  CompiledGeneralProfile(const Schema& schema,
                         const std::vector<PartialOrder>& orders);

  size_t num_numeric() const { return num_numeric_; }
  size_t num_nominal() const { return num_nominal_; }
  size_t row_slots() const { return row_slots_; }
  double numeric_sign(size_t i) const { return sign_[i]; }

  void PackRow(const Dataset& data, RowId r, uint64_t* dest) const {
    for (size_t i = 0; i < num_numeric_; ++i) {
      dest[i] = std::bit_cast<uint64_t>(sign_[i] * data.numeric_column(i)[r]);
    }
    uint64_t* nom = dest + num_numeric_;
    for (size_t j = 0; j < num_nominal_; ++j) {
      nom[j] = data.nominal_column(j)[r];
    }
    for (size_t k = num_numeric_ + num_nominal_; k < row_slots_; ++k) {
      dest[k] = 0;
    }
  }

  /// \brief Four-way dominance over two packed rows; byte-identical
  /// outcomes to GeneralDominanceComparator::Compare.
  DomResult Compare(const uint64_t* a, const uint64_t* b) const {
    unsigned left = 0, right = 0;
    for (size_t i = 0; i < num_numeric_; ++i) {
      const double x = std::bit_cast<double>(a[i]);
      const double y = std::bit_cast<double>(b[i]);
      left |= static_cast<unsigned>(x < y);
      right |= static_cast<unsigned>(y < x);
    }
    if (left & right) return DomResult::kIncomparable;
    const uint64_t* na = a + num_numeric_;
    const uint64_t* nb = b + num_numeric_;
    for (size_t j = 0; j < num_nominal_; ++j) {
      const uint64_t va = na[j], vb = nb[j];
      if (va == vb) continue;
      const uint8_t r = rel_[rel_offset_[j] + va * cardinality_[j] + vb];
      if (r == 0) return DomResult::kIncomparable;
      if (r == 1) {
        if (right) return DomResult::kIncomparable;
        left = 1;
      } else {
        if (left) return DomResult::kIncomparable;
        right = 1;
      }
    }
    if (left) return DomResult::kLeftDominates;
    if (right) return DomResult::kRightDominates;
    return DomResult::kEqual;
  }

  /// \brief One-vs-many scan (kernel_simd.cc): index of the first row that
  /// dominates `probe`, or n. The numeric section runs vectorized; the
  /// relation-table probes stay scalar (table lookups do not vectorize).
  size_t CompareBlock(const uint64_t* probe, const uint64_t* base, size_t n,
                      size_t stride) const;

  /// \brief Relation-table probe for the j-th nominal dimension: 0 when a
  /// and b are incomparable, 1 when a ≺ b, 2 when b ≺ a. For the SIMD
  /// module's scalar nominal section.
  uint8_t relation(size_t j, uint64_t a, uint64_t b) const {
    return rel_[rel_offset_[j] + a * cardinality_[j] + b];
  }

  /// \brief Values in the j-th nominal dimension's dictionary.
  size_t cardinality(size_t j) const { return cardinality_[j]; }

  /// \brief SIMD lane role masks for the numeric section (the nominal
  /// section is scalar here, so there are no nominal masks).
  const uint8_t* lane4_numeric_masks() const { return lane4_num_.data(); }
  const uint8_t* lane2_numeric_masks() const { return lane2_num_.data(); }

 private:
  size_t num_numeric_ = 0;
  size_t num_nominal_ = 0;
  size_t row_slots_ = 0;
  std::vector<double> sign_;
  std::vector<uint8_t> rel_;           // flat per-dimension relation tables
  std::vector<size_t> rel_offset_;
  std::vector<size_t> cardinality_;
  std::vector<uint8_t> lane4_num_;     // SIMD lane roles, 4-lane groups
  std::vector<uint8_t> lane2_num_;
};

/// \brief A batch of candidate rows packed row-major under a compiled
/// profile, with the originating RowIds retained for mapping results back.
/// Works with either compiled profile type (both satisfy PackRow +
/// row_slots).
class PackedBlock {
 public:
  template <typename Profile>
  void Pack(const Profile& profile, const Dataset& data, const RowId* ids,
            size_t n) {
    stride_ = profile.row_slots();
    ids_.assign(ids, ids + n);
    buf_.EnsureCapacity(n * stride_, 0);
    uint64_t* dest = buf_.data();
    for (size_t i = 0; i < n; ++i, dest += stride_) {
      profile.PackRow(data, ids[i], dest);
    }
  }

  template <typename Profile>
  void Pack(const Profile& profile, const Dataset& data,
            const std::vector<RowId>& ids) {
    Pack(profile, data, ids.data(), ids.size());
  }

  /// \brief Packs every row of `data` in order (ids 0..n-1). Shard images
  /// store whole shards, so the identity id map is the common case.
  template <typename Profile>
  void PackAll(const Profile& profile, const Dataset& data) {
    const size_t n = data.num_rows();
    stride_ = profile.row_slots();
    ids_.resize(n);
    buf_.EnsureCapacity(n * stride_, 0);
    uint64_t* dest = buf_.data();
    for (size_t i = 0; i < n; ++i, dest += stride_) {
      ids_[i] = static_cast<RowId>(i);
      profile.PackRow(data, static_cast<RowId>(i), dest);
    }
  }

  /// \brief Resets to an empty block with the given stride, ready for
  /// AppendRaw. Keeps the buffer (append re-grows from live capacity).
  void Reset(size_t stride) {
    stride_ = stride;
    ids_.clear();
  }

  /// \brief Appends one already-packed row (stride() slots) verbatim. The
  /// serving layer assembles response blocks this way: result rows are
  /// copied straight out of the snapshots' neutral blocks, never re-packed.
  void AppendRaw(const uint64_t* row, RowId id) {
    buf_.EnsureCapacity((ids_.size() + 1) * stride_, ids_.size() * stride_);
    std::memcpy(buf_.data() + ids_.size() * stride_, row,
                stride_ * sizeof(uint64_t));
    ids_.push_back(id);
  }

  /// \brief Serializes stride, row ids and raw slots. Meaningful only for
  /// blocks packed under a profile-independent (neutral) compilation — the
  /// writer persists the bytes as-is.
  void WriteTo(BinaryWriter& writer) const;

  /// \brief Reads a block written by WriteTo. Rejects more than `max_rows`
  /// rows and, when `expected_stride` is non-zero, any other stride.
  /// Returns false on truncated or malformed input.
  bool ReadFrom(BinaryReader& reader, uint64_t max_rows,
                size_t expected_stride);

  size_t size() const { return ids_.size(); }
  size_t stride() const { return stride_; }
  const uint64_t* row(size_t i) const { return buf_.data() + i * stride_; }
  RowId row_id(size_t i) const { return ids_[i]; }

  size_t MemoryUsage() const {
    return buf_.MemoryUsage() + ids_.capacity() * sizeof(RowId);
  }

 private:
  size_t stride_ = 0;
  AlignedRowBuffer buf_;
  std::vector<RowId> ids_;
};

/// \brief Dense window scratch for window algorithms (SFS / BNL / ASFS):
/// accepted tuples are copied contiguously in acceptance order so the
/// per-candidate scan streams sequential cache lines, and BNL's eviction
/// compaction and move-to-front promotion are row memmoves.
class PackedWindow {
 public:
  explicit PackedWindow(size_t row_slots) : stride_(row_slots) {}

  void Append(const uint64_t* row, RowId id) {
    buf_.EnsureCapacity((ids_.size() + 1) * stride_, ids_.size() * stride_);
    std::memcpy(buf_.data() + ids_.size() * stride_, row,
                stride_ * sizeof(uint64_t));
    ids_.push_back(id);
  }

  size_t size() const { return ids_.size(); }
  size_t stride() const { return stride_; }
  const uint64_t* row(size_t i) const { return buf_.data() + i * stride_; }
  /// \brief Base of the packed rows, for hoisted sequential scans. Valid
  /// until the next Append (growth may reallocate).
  const uint64_t* data() const { return buf_.data(); }
  RowId id(size_t i) const { return ids_[i]; }
  const std::vector<RowId>& ids() const { return ids_; }

  /// \brief BNL compaction: moves entry `src` down to `dst` (dst <= src).
  void CopyEntry(size_t src, size_t dst) {
    if (src == dst) return;
    std::memmove(buf_.data() + dst * stride_, buf_.data() + src * stride_,
                 stride_ * sizeof(uint64_t));
    ids_[dst] = ids_[src];
  }

  /// \brief Drops every entry at index >= n.
  void Truncate(size_t n) { ids_.resize(n); }

  /// \brief Move-to-front promotion: swaps entry i with entry 0.
  void PromoteToFront(size_t i) {
    if (i == 0) return;
    swap_tmp_.resize(stride_);
    uint64_t* front = buf_.data();
    uint64_t* other = buf_.data() + i * stride_;
    std::memcpy(swap_tmp_.data(), front, stride_ * sizeof(uint64_t));
    std::memcpy(front, other, stride_ * sizeof(uint64_t));
    std::memcpy(other, swap_tmp_.data(), stride_ * sizeof(uint64_t));
    std::swap(ids_[0], ids_[i]);
  }

  size_t MemoryUsage() const {
    return buf_.MemoryUsage() + ids_.capacity() * sizeof(RowId);
  }

 private:
  size_t stride_;
  AlignedRowBuffer buf_;
  std::vector<RowId> ids_;
  std::vector<uint64_t> swap_tmp_;
};

/// \brief True iff any window row dominates the packed candidate `cand`
/// (the dense-window scan every SFS-shaped extraction runs). One
/// CompareBlock call: the runtime-dispatched SIMD kernel loads the
/// candidate's vectors into registers once and streams the window's
/// contiguous rows. Adds the number of comparisons actually performed
/// (rows examined up to and including the dominator) to *tests when
/// provided — identical counts to the scalar per-pair scan, since every
/// tier stops at the same first dominator.
template <typename Profile>
inline bool WindowDominates(const Profile& profile, const PackedWindow& window,
                            const uint64_t* cand, size_t* tests = nullptr) {
  const size_t n = window.size();
  const size_t hit = profile.CompareBlock(cand, window.data(), n,
                                          window.stride());
  if (tests != nullptr) *tests += hit < n ? hit + 1 : n;
  return hit < n;
}

}  // namespace nomsky

#endif  // NOMSKY_DOMINANCE_KERNEL_H_
