// SIMD dominance kernel: runtime-dispatched one-vs-many window scans over
// the packed tuple layout of kernel.h.
//
// The PR-5 layout was shaped for exactly this: a packed row is contiguous
// sign-folded doubles followed by u64 (rank << 32) | value nominal words on
// a 64-byte stride, with the padding slots zeroed. That lets a vector lane
// operation compare 4 (AVX2) or 2 (SSE4.2) slots of both rows at once:
//
//  * numeric slots: one ordered-quiet compare per direction, movemask into
//    the left/right flag bits (IEEE `<` exactly — NaN and ±0.0 behave as in
//    the scalar loop);
//  * nominal slots: the rank order falls out of a 64-bit shift + signed
//    compare (ranks are 32-bit, so signed == unsigned), equality of the
//    full word detects ties, and `rank-equal but word-distinct` lanes
//    accumulate the clash flag (distinct unlisted values => INCOMPARABLE);
//  * padding slots are zero on both sides, so full-width group loads never
//    need a tail loop — per-group lane masks (compiled once per profile)
//    keep numeric, nominal and padding lanes apart even when a 4-slot
//    group straddles the sections.
//
// Dispatch is by runtime CPU feature detection (no -march on the binary,
// so artifacts stay portable): AVX2 > SSE4.2 > the scalar loop in
// kernel.h. NOMSKY_FORCE_SCALAR_KERNEL=1 pins the scalar fallback,
// NOMSKY_KERNEL_TIER=scalar|sse42|avx2 selects a specific tier (clamped to
// what the host supports), and ForceKernelTier lets benches and tests pin
// tiers in-process. Every tier is property-tested byte-identical to the
// reference comparator (tests/dominance_kernel_test.cc).
//
// The one-vs-many entry points are the whole design: the probe row's
// vectors load into registers once per window scan instead of once per
// pair, and the scan streams the window's contiguous stride-spaced rows.
// Engines reach them through CompiledProfile::CompareBlock /
// CompareBlockRelated (dispatched), or per-tier here for tests.

#ifndef NOMSKY_DOMINANCE_KERNEL_SIMD_H_
#define NOMSKY_DOMINANCE_KERNEL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dominance/kernel.h"

namespace nomsky {

/// \brief Dispatch tiers, best last. Scalar is always available; the SIMD
/// tiers exist on x86-64 hosts with the matching CPU feature.
enum class KernelTier : uint8_t { kScalar = 0, kSse42 = 1, kAvx2 = 2 };

/// \brief Stable lowercase tier name ("scalar" / "sse42" / "avx2") for
/// logs, --explain output and BENCH JSON metadata.
const char* KernelTierName(KernelTier tier);

/// \brief Best tier the host CPU supports (pure feature detection; ignores
/// environment overrides).
KernelTier DetectBestKernelTier();

/// \brief True iff `tier` can run on this host. kScalar is always true.
bool KernelTierAvailable(KernelTier tier);

/// \brief Every tier the host supports, worst (scalar) first.
std::vector<KernelTier> AvailableKernelTiers();

/// \brief The tier dispatched calls run on: a ForceKernelTier override if
/// one is set, else NOMSKY_FORCE_SCALAR_KERNEL / NOMSKY_KERNEL_TIER from
/// the environment (read once), else DetectBestKernelTier().
KernelTier ActiveKernelTier();

/// \brief Pins the dispatched tier process-wide, clamped to availability;
/// kTierNoForce restores environment/detected dispatch. For benches and
/// forced-dispatch CI runs — not intended to flip mid-query (readers pick
/// it up per window scan).
inline constexpr int kTierNoForce = -1;
void ForceKernelTier(int tier_or_no_force);

// ---------------------------------------------------------------------------
// Tier-explicit entry points. `base` addresses n rows spaced `stride` slots
// apart, packed (with zeroed padding) under `profile`; `probe` is one such
// row. Callers must not pass an unavailable tier.
// ---------------------------------------------------------------------------

/// \brief Index of the first row that DOMINATES the probe
/// (Compare(row, probe) == kLeftDominates), or n when none does.
size_t FindDominatorTier(KernelTier tier, const CompiledProfile& profile,
                         const uint64_t* probe, const uint64_t* base,
                         size_t n, size_t stride);

/// \brief Index of the first row strictly related to the probe either way
/// (Compare(row, probe) is kLeftDominates or kRightDominates), or n.
/// `*result` receives the relation at the returned index (BNL's scan:
/// equal and incomparable rows are "keep", only related rows act).
size_t FindRelatedTier(KernelTier tier, const CompiledProfile& profile,
                       const uint64_t* probe, const uint64_t* base, size_t n,
                       size_t stride, DomResult* result);

/// \brief Full four-way comparison of two packed rows on a specific tier;
/// byte-identical to CompiledProfile::Compare on every input.
DomResult ComparePairTier(KernelTier tier, const CompiledProfile& profile,
                          const uint64_t* a, const uint64_t* b);

/// \brief General-model one-vs-many: the numeric section runs vectorized,
/// the per-dimension relation-table probes stay scalar (table lookups do
/// not vectorize).
size_t FindDominatorTier(KernelTier tier,
                         const CompiledGeneralProfile& profile,
                         const uint64_t* probe, const uint64_t* base,
                         size_t n, size_t stride);

/// \brief General-model pair comparison on a specific tier; byte-identical
/// to CompiledGeneralProfile::Compare.
DomResult ComparePairTier(KernelTier tier,
                          const CompiledGeneralProfile& profile,
                          const uint64_t* a, const uint64_t* b);

}  // namespace nomsky

#endif  // NOMSKY_DOMINANCE_KERNEL_SIMD_H_
