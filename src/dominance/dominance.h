// Dominance kernel: tuple-vs-tuple comparison under a preference profile.
//
// p dominates q iff p ⪯ q in every dimension and p ≺ q in at least one
// (Section 2). Numeric dimensions use the schema's fixed orientation;
// nominal dimensions use the query's implicit preferences, under which two
// distinct unlisted values are INCOMPARABLE (not equal!) — this is the key
// semantic difference from mapping values to ranks and comparing
// numerically.

#ifndef NOMSKY_DOMINANCE_DOMINANCE_H_
#define NOMSKY_DOMINANCE_DOMINANCE_H_

#include <vector>

#include "common/dataset.h"
#include "order/partial_order.h"
#include "order/preference_profile.h"

namespace nomsky {

/// \brief Per-dimension comparison signs folding the schema's numeric
/// orientations: +1.0 for min-better, -1.0 for max-better. Shared by the
/// reference comparators and the compiled kernel so the sign semantics
/// cannot drift apart.
std::vector<double> NumericSigns(const Schema& schema);

/// \brief Outcome of comparing two tuples under a dominance relation.
enum class DomResult {
  kEqual,          ///< identical in every dimension
  kLeftDominates,  ///< left ≺ right
  kRightDominates, ///< right ≺ left
  kIncomparable,   ///< neither dominates
};

/// \brief Compares rows of one dataset under a fixed preference profile.
///
/// The comparator borrows the dataset and profile; both must outlive it.
class DominanceComparator {
 public:
  DominanceComparator(const Dataset& data, const PreferenceProfile& profile);

  /// \brief Full four-way comparison of rows p and q.
  DomResult Compare(RowId p, RowId q) const;

  /// \brief True iff row p dominates row q (strictly better overall).
  bool Dominates(RowId p, RowId q) const {
    return Compare(p, q) == DomResult::kLeftDominates;
  }

  const Dataset& data() const { return *data_; }
  const PreferenceProfile& profile() const { return *profile_; }

 private:
  const Dataset* data_;
  const PreferenceProfile* profile_;
  std::vector<double> numeric_sign_;
};

/// \brief Dominance under arbitrary per-dimension partial orders (the
/// general partial-order model). Slower than DominanceComparator; used by
/// the MDC machinery and by property tests that validate the implicit-
/// preference fast path against the explicit P(R̃) expansion.
///
/// Column data pointers and numeric signs are hoisted out of the per-pair
/// comparison loop at construction, so the dataset's columns must not grow
/// (and thereby reallocate) while the comparator is alive. Every current
/// user builds the comparator per query over a frozen dataset.
class GeneralDominanceComparator {
 public:
  /// `nominal_orders[j]` is the (closed) partial order of the j-th nominal
  /// dimension. Must match the schema's nominal cardinalities.
  GeneralDominanceComparator(const Dataset& data,
                             std::vector<PartialOrder> nominal_orders);

  DomResult Compare(RowId p, RowId q) const;

  bool Dominates(RowId p, RowId q) const {
    return Compare(p, q) == DomResult::kLeftDominates;
  }

 private:
  std::vector<PartialOrder> orders_;
  std::vector<double> numeric_sign_;
  // Hoisted raw column pointers: one indirection per dimension per pair
  // instead of re-indexing the Dataset's vector-of-vectors each time.
  std::vector<const double*> numeric_cols_;
  std::vector<const ValueId*> nominal_cols_;
};

}  // namespace nomsky

#endif  // NOMSKY_DOMINANCE_DOMINANCE_H_
