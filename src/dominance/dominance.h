// Dominance kernel: tuple-vs-tuple comparison under a preference profile.
//
// p dominates q iff p ⪯ q in every dimension and p ≺ q in at least one
// (Section 2). Numeric dimensions use the schema's fixed orientation;
// nominal dimensions use the query's implicit preferences, under which two
// distinct unlisted values are INCOMPARABLE (not equal!) — this is the key
// semantic difference from mapping values to ranks and comparing
// numerically.

#ifndef NOMSKY_DOMINANCE_DOMINANCE_H_
#define NOMSKY_DOMINANCE_DOMINANCE_H_

#include <vector>

#include "common/dataset.h"
#include "order/partial_order.h"
#include "order/preference_profile.h"

namespace nomsky {

/// \brief Outcome of comparing two tuples under a dominance relation.
enum class DomResult {
  kEqual,          ///< identical in every dimension
  kLeftDominates,  ///< left ≺ right
  kRightDominates, ///< right ≺ left
  kIncomparable,   ///< neither dominates
};

/// \brief Compares rows of one dataset under a fixed preference profile.
///
/// The comparator borrows the dataset and profile; both must outlive it.
class DominanceComparator {
 public:
  DominanceComparator(const Dataset& data, const PreferenceProfile& profile);

  /// \brief Full four-way comparison of rows p and q.
  DomResult Compare(RowId p, RowId q) const;

  /// \brief True iff row p dominates row q (strictly better overall).
  bool Dominates(RowId p, RowId q) const {
    return Compare(p, q) == DomResult::kLeftDominates;
  }

  const Dataset& data() const { return *data_; }
  const PreferenceProfile& profile() const { return *profile_; }

 private:
  const Dataset* data_;
  const PreferenceProfile* profile_;
  std::vector<double> numeric_sign_;
};

/// \brief Dominance under arbitrary per-dimension partial orders (the
/// general partial-order model). Slower than DominanceComparator; used by
/// the MDC machinery and by property tests that validate the implicit-
/// preference fast path against the explicit P(R̃) expansion.
class GeneralDominanceComparator {
 public:
  /// `nominal_orders[j]` is the (closed) partial order of the j-th nominal
  /// dimension. Must match the schema's nominal cardinalities.
  GeneralDominanceComparator(const Dataset& data,
                             std::vector<PartialOrder> nominal_orders);

  DomResult Compare(RowId p, RowId q) const;

  bool Dominates(RowId p, RowId q) const {
    return Compare(p, q) == DomResult::kLeftDominates;
  }

 private:
  const Dataset* data_;
  std::vector<PartialOrder> orders_;
  std::vector<double> numeric_sign_;
};

}  // namespace nomsky

#endif  // NOMSKY_DOMINANCE_DOMINANCE_H_
