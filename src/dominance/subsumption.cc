#include "dominance/subsumption.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace nomsky {

bool Subsumes(const CompiledProfile& weaker, const CompiledProfile& stronger) {
  if (weaker.num_numeric() != stronger.num_numeric() ||
      weaker.num_nominal() != stronger.num_nominal()) {
    return false;
  }
  std::vector<ValueId> by_rank;
  for (size_t j = 0; j < weaker.num_nominal(); ++j) {
    const size_t c = weaker.cardinality(j);
    if (stronger.cardinality(j) != c) return false;
    // The weaker order on dimension j is exactly rank order over its listed
    // values, with every listed value above every unlisted one and unlisted
    // values mutually incomparable. Listed ranks are the 0-based choice
    // positions — distinct and contiguous — so bucketing recovers the choice
    // list without sorting.
    size_t listed = 0;
    for (ValueId v = 0; v < c; ++v) {
      if (weaker.rank(j, v) != CompiledProfile::kUnlistedRank) ++listed;
    }
    if (listed == 0) continue;  // no pairs ordered by the weaker profile
    by_rank.assign(listed, 0);
    for (ValueId v = 0; v < c; ++v) {
      const uint32_t r = weaker.rank(j, v);
      if (r != CompiledProfile::kUnlistedRank) by_rank[r] = v;
    }
    // Containment needs rank_s(u) < rank_s(v) for every weaker-ordered pair
    // u ≺_w v. Strict < is transitive, so checking consecutive choices
    // covers every listed pair...
    uint32_t prev = stronger.rank(j, by_rank[0]);
    for (size_t i = 1; i < listed; ++i) {
      const uint32_t cur = stronger.rank(j, by_rank[i]);
      if (!(prev < cur)) return false;
      prev = cur;
    }
    // ...and "last listed choice beats the best unlisted value" covers the
    // listed-vs-unlisted pairs (every earlier choice ranks strictly lower
    // than the last by the chain above). Note prev may be kUnlistedRank —
    // a weaker choice the stronger profile dropped can never stay above
    // values the stronger profile also leaves unlisted.
    if (listed < c) {
      uint32_t min_unlisted = std::numeric_limits<uint32_t>::max();
      for (ValueId v = 0; v < c; ++v) {
        if (weaker.rank(j, v) == CompiledProfile::kUnlistedRank) {
          min_unlisted = std::min(min_unlisted, stronger.rank(j, v));
        }
      }
      if (!(prev < min_unlisted)) return false;
    }
  }
  return true;
}

bool Subsumes(const CompiledGeneralProfile& weaker,
              const CompiledGeneralProfile& stronger) {
  if (weaker.num_numeric() != stronger.num_numeric() ||
      weaker.num_nominal() != stronger.num_nominal()) {
    return false;
  }
  for (size_t j = 0; j < weaker.num_nominal(); ++j) {
    const size_t c = weaker.cardinality(j);
    if (stronger.cardinality(j) != c) return false;
    for (uint64_t a = 0; a < c; ++a) {
      for (uint64_t b = a + 1; b < c; ++b) {
        const uint8_t r = weaker.relation(j, a, b);
        if (r != 0 && stronger.relation(j, a, b) != r) return false;
      }
    }
  }
  return true;
}

}  // namespace nomsky
