#include "dominance/kernel.h"

#include "common/logging.h"
#include "common/serialize.h"

namespace nomsky {

namespace {

constexpr size_t kSlotsPerCacheLine = 64 / sizeof(uint64_t);

size_t PaddedSlots(size_t used) {
  if (used == 0) return kSlotsPerCacheLine;
  return (used + kSlotsPerCacheLine - 1) / kSlotsPerCacheLine *
         kSlotsPerCacheLine;
}

// One lane-role mask per `lanes`-slot group: bit l of element g flags slot
// g*lanes+l as numeric (< nn) resp. nominal (in [nn, nn+nm)). Padding
// lanes are in neither mask, so full-width group compares AND away both
// the padding and the foreign section when a group straddles a boundary.
// The stride is a multiple of 8, so groups of 2 or 4 never cross rows.
void BuildLaneMasks(size_t nn, size_t nm, size_t stride, size_t lanes,
                    std::vector<uint8_t>* num_masks,
                    std::vector<uint8_t>* nom_masks) {
  const size_t groups = stride / lanes;
  num_masks->assign(groups, 0);
  if (nom_masks != nullptr) nom_masks->assign(groups, 0);
  for (size_t g = 0; g < groups; ++g) {
    for (size_t l = 0; l < lanes; ++l) {
      const size_t slot = g * lanes + l;
      if (slot < nn) {
        (*num_masks)[g] |= static_cast<uint8_t>(1u << l);
      } else if (slot < nn + nm && nom_masks != nullptr) {
        (*nom_masks)[g] |= static_cast<uint8_t>(1u << l);
      }
    }
  }
}

}  // namespace

CompiledProfile::CompiledProfile(const Schema& schema,
                                 const PreferenceProfile& profile)
    : num_numeric_(schema.num_numeric()),
      num_nominal_(schema.num_nominal()),
      row_slots_(PaddedSlots(schema.num_numeric() + schema.num_nominal())),
      sign_(NumericSigns(schema)) {
  NOMSKY_CHECK(profile.num_nominal() == schema.num_nominal())
      << "profile arity does not match schema";
  rank_offset_.reserve(num_nominal_);
  size_t total = 0;
  for (size_t j = 0; j < num_nominal_; ++j) {
    rank_offset_.push_back(total);
    total += schema.dim(schema.nominal_dims()[j]).cardinality();
  }
  ranks_.assign(total, kUnlistedRank);
  for (size_t j = 0; j < num_nominal_; ++j) {
    const ImplicitPreference& pref = profile.pref(j);
    const std::vector<ValueId>& choices = pref.choices();
    for (size_t pos = 0; pos < choices.size(); ++pos) {
      ranks_[rank_offset_[j] + choices[pos]] = static_cast<uint32_t>(pos);
    }
  }
  BuildLaneMasks(num_numeric_, num_nominal_, row_slots_, 4, &lane4_num_,
                 &lane4_nom_);
  BuildLaneMasks(num_numeric_, num_nominal_, row_slots_, 2, &lane2_num_,
                 &lane2_nom_);
}

CompiledGeneralProfile::CompiledGeneralProfile(
    const Schema& schema, const std::vector<PartialOrder>& orders)
    : num_numeric_(schema.num_numeric()),
      num_nominal_(schema.num_nominal()),
      row_slots_(PaddedSlots(schema.num_numeric() + schema.num_nominal())),
      sign_(NumericSigns(schema)) {
  NOMSKY_CHECK(orders.size() == schema.num_nominal())
      << "order count does not match schema";
  rel_offset_.reserve(num_nominal_);
  cardinality_.reserve(num_nominal_);
  size_t total = 0;
  for (size_t j = 0; j < num_nominal_; ++j) {
    const size_t c = schema.dim(schema.nominal_dims()[j]).cardinality();
    NOMSKY_CHECK(orders[j].cardinality() == c)
        << "order cardinality does not match schema";
    rel_offset_.push_back(total);
    cardinality_.push_back(c);
    total += c * c;
  }
  rel_.assign(total, 0);
  for (size_t j = 0; j < num_nominal_; ++j) {
    const size_t c = cardinality_[j];
    for (ValueId a = 0; a < c; ++a) {
      for (ValueId b = 0; b < c; ++b) {
        if (a == b) continue;
        if (orders[j].Contains(a, b)) {
          rel_[rel_offset_[j] + a * c + b] = 1;
        } else if (orders[j].Contains(b, a)) {
          rel_[rel_offset_[j] + a * c + b] = 2;
        }
      }
    }
  }
  BuildLaneMasks(num_numeric_, num_nominal_, row_slots_, 4, &lane4_num_,
                 nullptr);
  BuildLaneMasks(num_numeric_, num_nominal_, row_slots_, 2, &lane2_num_,
                 nullptr);
}

void PackedBlock::WriteTo(BinaryWriter& writer) const {
  writer.Pod<uint64_t>(stride_);
  writer.PodVector(ids_);
  writer.Bytes(buf_.data(), ids_.size() * stride_ * sizeof(uint64_t));
}

bool PackedBlock::ReadFrom(BinaryReader& reader, uint64_t max_rows,
                           size_t expected_stride) {
  uint64_t stride = 0;
  if (!reader.Pod(&stride)) return false;
  if (expected_stride != 0 && stride != expected_stride) return false;
  // A zero or absurd stride would defeat the row-count sanity bound below.
  if (stride == 0 || stride > (1u << 16)) return false;
  if (!reader.PodVector(&ids_, max_rows)) return false;
  stride_ = static_cast<size_t>(stride);
  const size_t slots = ids_.size() * stride_;
  buf_.EnsureCapacity(slots, 0);
  return reader.Bytes(buf_.data(), slots * sizeof(uint64_t));
}

}  // namespace nomsky
