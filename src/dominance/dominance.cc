#include "dominance/dominance.h"

namespace nomsky {

std::vector<double> NumericSigns(const Schema& schema) {
  std::vector<double> signs(schema.num_numeric());
  for (size_t i = 0; i < schema.num_numeric(); ++i) {
    signs[i] = schema.dim(schema.numeric_dims()[i]).direction() ==
                       SortDirection::kMinBetter
                   ? 1.0
                   : -1.0;
  }
  return signs;
}

DominanceComparator::DominanceComparator(const Dataset& data,
                                         const PreferenceProfile& profile)
    : data_(&data),
      profile_(&profile),
      numeric_sign_(NumericSigns(data.schema())) {
  NOMSKY_CHECK(profile.num_nominal() == data.schema().num_nominal())
      << "profile arity does not match schema";
}

DomResult DominanceComparator::Compare(RowId p, RowId q) const {
  bool left_better = false, right_better = false;
  const size_t num_numeric = numeric_sign_.size();
  for (size_t i = 0; i < num_numeric; ++i) {
    const auto& col = data_->numeric_column(i);
    double a = numeric_sign_[i] * col[p];
    double b = numeric_sign_[i] * col[q];
    if (a < b) {
      if (right_better) return DomResult::kIncomparable;
      left_better = true;
    } else if (b < a) {
      if (left_better) return DomResult::kIncomparable;
      right_better = true;
    }
  }
  const size_t num_nominal = profile_->num_nominal();
  for (size_t j = 0; j < num_nominal; ++j) {
    const auto& col = data_->nominal_column(j);
    ValueId a = col[p], b = col[q];
    if (a == b) continue;
    const ImplicitPreference& pref = profile_->pref(j);
    int cmp = pref.Compare(a, b);
    if (cmp == 0) return DomResult::kIncomparable;  // distinct unlisted values
    if (cmp < 0) {
      if (right_better) return DomResult::kIncomparable;
      left_better = true;
    } else {
      if (left_better) return DomResult::kIncomparable;
      right_better = true;
    }
  }
  if (left_better) return DomResult::kLeftDominates;
  if (right_better) return DomResult::kRightDominates;
  return DomResult::kEqual;
}

GeneralDominanceComparator::GeneralDominanceComparator(
    const Dataset& data, std::vector<PartialOrder> nominal_orders)
    : orders_(std::move(nominal_orders)),
      numeric_sign_(NumericSigns(data.schema())) {
  NOMSKY_CHECK(orders_.size() == data.schema().num_nominal());
  for (size_t j = 0; j < orders_.size(); ++j) {
    NOMSKY_CHECK(orders_[j].cardinality() ==
                 data.schema().dim(data.schema().nominal_dims()[j]).cardinality());
  }
  numeric_cols_.reserve(data.schema().num_numeric());
  for (size_t i = 0; i < data.schema().num_numeric(); ++i) {
    numeric_cols_.push_back(data.numeric_column(i).data());
  }
  nominal_cols_.reserve(orders_.size());
  for (size_t j = 0; j < orders_.size(); ++j) {
    nominal_cols_.push_back(data.nominal_column(j).data());
  }
}

DomResult GeneralDominanceComparator::Compare(RowId p, RowId q) const {
  bool left_better = false, right_better = false;
  for (size_t i = 0; i < numeric_sign_.size(); ++i) {
    const double* col = numeric_cols_[i];
    double a = numeric_sign_[i] * col[p];
    double b = numeric_sign_[i] * col[q];
    if (a < b) {
      if (right_better) return DomResult::kIncomparable;
      left_better = true;
    } else if (b < a) {
      if (left_better) return DomResult::kIncomparable;
      right_better = true;
    }
  }
  for (size_t j = 0; j < orders_.size(); ++j) {
    const ValueId* col = nominal_cols_[j];
    ValueId a = col[p], b = col[q];
    if (a == b) continue;
    if (orders_[j].Contains(a, b)) {
      if (right_better) return DomResult::kIncomparable;
      left_better = true;
    } else if (orders_[j].Contains(b, a)) {
      if (left_better) return DomResult::kIncomparable;
      right_better = true;
    } else {
      return DomResult::kIncomparable;
    }
  }
  if (left_better) return DomResult::kLeftDominates;
  if (right_better) return DomResult::kRightDominates;
  return DomResult::kEqual;
}

}  // namespace nomsky
