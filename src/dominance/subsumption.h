// Profile subsumption: does one compiled profile's dominance relation
// contain another's?
//
// Property 1 of the paper says a refined preference only shrinks the
// skyline: if every pair ordered by profile A is ordered the same way by
// profile B (B *refines* A), then SKY(B) ⊆ SKY(A) over any candidate set.
// The result cache leans on this — a cached skyline for A is a superset of
// the answer for any B that refines A, so B can be answered by re-filtering
// A's cached rows through the kernel instead of rescanning the table.
//
// These predicates decide the containment directly on the compiled state
// (rank arrays / relation tables), so the cache never re-parses profile
// text on the lookup path. `Subsumes(weaker, stronger)` is true iff for
// every nominal dimension and every value pair (u, v):
//
//     u ≺_weaker v  ⇒  u ≺_stronger v
//
// Numeric dimensions are schema-oriented and query-independent, so they
// never affect subsumption. For implicit preferences the per-pair relation
// is rank order (listed choice position; unlisted = kUnlistedRank, i.e.
// every listed value beats every unlisted one and two distinct unlisted
// values are incomparable), which makes the containment checkable in
// O(cardinality) per dimension. For the general partial-order model it is
// a literal relation-table containment scan.
//
// tests/subsumption_test.cc pins Subsumes against
// PreferenceProfile::IsRefinementOf and against the refilter property
// (re-filtering the weaker profile's skyline under the stronger one is
// byte-identical to a fresh scan).

#ifndef NOMSKY_DOMINANCE_SUBSUMPTION_H_
#define NOMSKY_DOMINANCE_SUBSUMPTION_H_

#include "dominance/kernel.h"

namespace nomsky {

/// \brief True iff `stronger` refines `weaker`: every dominance pair
/// induced by `weaker` also holds under `stronger`, so any skyline cached
/// under `weaker` is a superset of the answer under `stronger`. Profiles
/// compiled against different shapes (dimension counts or cardinalities)
/// are never subsumed.
bool Subsumes(const CompiledProfile& weaker, const CompiledProfile& stronger);

/// \brief The general partial-order model's containment: every related
/// pair in `weaker`'s closed relation tables is related the same way in
/// `stronger`'s.
bool Subsumes(const CompiledGeneralProfile& weaker,
              const CompiledGeneralProfile& stronger);

}  // namespace nomsky

#endif  // NOMSKY_DOMINANCE_SUBSUMPTION_H_
